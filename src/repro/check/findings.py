"""Finding records, severities, suppressions and report output.

Every lint rule emits :class:`Finding` objects; the driver filters them
through per-line suppressions and renders ``file:line`` text or JSON.

Suppression syntax (on the offending line or the line directly above)::

    # repro: allow(lock-order) -- rationale for why this is safe
    # repro: allow(blocking-under-lock, trace-guard)

A rule name of ``all`` suppresses every rule on that line.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import asdict, dataclass

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: report ordering: most severe first
SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


@dataclass
class Finding:
    """One lint finding, anchored to a source location."""

    rule: str
    severity: str
    path: str
    line: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.location}: {self.severity}: " \
               f"[{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return asdict(self)


def parse_suppressions(text: str) -> dict[int, set[str]]:
    """Map of 1-based line number -> rule names allowed on that line.

    Only real ``#`` comments count: an ``allow(...)`` spelled inside a
    docstring or string literal (this module's own docstring, say) is
    documentation, not a suppression.  Unparseable sources fall back to
    a plain line scan so lint can still report on broken files.
    """
    allows: dict[int, set[str]] = {}

    def add(lineno: int, spec: str) -> None:
        rules = {r.strip() for r in spec.split(",") if r.strip()}
        if rules:
            allows.setdefault(lineno, set()).update(rules)

    try:
        tokens = list(tokenize.generate_tokens(
            io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = _ALLOW_RE.search(line)
            if m is not None:
                add(lineno, m.group(1))
        return allows
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _ALLOW_RE.search(tok.string)
        if m is not None:
            add(tok.start[0], m.group(1))
    return allows


def is_suppressed(finding: Finding,
                  allows: dict[int, set[str]]) -> bool:
    """True if an allow-comment on the line (or the line above) covers
    the finding's rule."""
    for lineno in (finding.line, finding.line - 1):
        rules = allows.get(lineno)
        if rules and (finding.rule in rules or "all" in rules):
            return True
    return False


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: file, line, rule (then severity so
    duplicate anchors order stably).  Keeping the key free of insertion
    order makes text and JSON reports byte-stable across runs, which CI
    diffs and ``--baseline`` files rely on."""
    return sorted(findings, key=lambda f: (
        f.path, f.line, f.rule, SEVERITY_ORDER.get(f.severity, 9)))


def render_report(findings: list[Finding], checked_files: int,
                  tool: str = "repro.check.lint") -> str:
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = sum(1 for f in findings if f.severity == WARNING)
    lines.append(f"{tool}: {checked_files} files, "
                 f"{errors} error(s), {warnings} warning(s), "
                 f"{len(findings) - errors - warnings} info")
    return "\n".join(lines)


def dump_json(findings: list[Finding], checked_files: int,
              suppressed: int, tool: str = "repro.check.lint") -> str:
    return json.dumps({
        "tool": tool,
        "files": checked_files,
        "suppressed": suppressed,
        "findings": [f.to_json() for f in sort_findings(findings)],
    }, indent=2, sort_keys=True)


def baseline_key(finding: Finding) -> tuple[str, str, int]:
    return (finding.rule, finding.path, finding.line)


def load_baseline(path: str,
                  tool: str = "repro.check") -> set[tuple[str, str, int]]:
    """Known-finding keys from a previous ``--json`` report (or any JSON
    file with a ``findings`` list of ``{rule, path, line}`` objects)."""
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
        entries = data["findings"] if isinstance(data, dict) else data
        return {(e["rule"], e["path"], int(e["line"])) for e in entries}
    except OSError as exc:
        raise SystemExit(f"{tool}: cannot read baseline {path}: "
                         f"{exc}") from exc
    except (json.JSONDecodeError, KeyError, TypeError,
            ValueError) as exc:
        raise SystemExit(f"{tool}: invalid baseline {path}: "
                         f"{exc}") from exc


def apply_baseline(findings: list[Finding],
                   baseline: set[tuple[str, str, int]],
                   ) -> tuple[list[Finding], int]:
    """Drop findings present in the baseline; returns (kept, dropped)."""
    kept = [f for f in findings if baseline_key(f) not in baseline]
    return kept, len(findings) - len(kept)
