"""Finding records, severities, suppressions and report output.

Every lint rule emits :class:`Finding` objects; the driver filters them
through per-line suppressions and renders ``file:line`` text or JSON.

Suppression syntax (on the offending line or the line directly above)::

    # repro: allow(lock-order) -- rationale for why this is safe
    # repro: allow(blocking-under-lock, trace-guard)

A rule name of ``all`` suppresses every rule on that line.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass

ERROR = "error"
WARNING = "warning"
INFO = "info"

#: report ordering: most severe first
SEVERITY_ORDER = {ERROR: 0, WARNING: 1, INFO: 2}

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\(([^)]*)\)")


@dataclass
class Finding:
    """One lint finding, anchored to a source location."""

    rule: str
    severity: str
    path: str
    line: int
    message: str

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def render(self) -> str:
        return f"{self.location}: {self.severity}: " \
               f"[{self.rule}] {self.message}"

    def to_json(self) -> dict:
        return asdict(self)


def parse_suppressions(text: str) -> dict[int, set[str]]:
    """Map of 1-based line number -> rule names allowed on that line."""
    allows: dict[int, set[str]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m is None:
            continue
        rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
        if rules:
            allows[lineno] = rules
    return allows


def is_suppressed(finding: Finding,
                  allows: dict[int, set[str]]) -> bool:
    """True if an allow-comment on the line (or the line above) covers
    the finding's rule."""
    for lineno in (finding.line, finding.line - 1):
        rules = allows.get(lineno)
        if rules and (finding.rule in rules or "all" in rules):
            return True
    return False


def sort_findings(findings: list[Finding]) -> list[Finding]:
    return sorted(findings, key=lambda f: (
        SEVERITY_ORDER.get(f.severity, 9), f.path, f.line, f.rule))


def render_report(findings: list[Finding], checked_files: int) -> str:
    lines = [f.render() for f in findings]
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = sum(1 for f in findings if f.severity == WARNING)
    lines.append(f"repro.check.lint: {checked_files} files, "
                 f"{errors} error(s), {warnings} warning(s), "
                 f"{len(findings) - errors - warnings} info")
    return "\n".join(lines)


def dump_json(findings: list[Finding], checked_files: int,
              suppressed: int) -> str:
    return json.dumps({
        "tool": "repro.check.lint",
        "files": checked_files,
        "suppressed": suppressed,
        "findings": [f.to_json() for f in findings],
    }, indent=2, sort_keys=True)
