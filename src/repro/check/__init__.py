"""Correctness tooling for the reproduction's own runtime.

Two prongs, mirroring the MUST/Umpire split in the MPI verification-tool
ecosystem:

* :mod:`repro.check.lint` — static AST analysis over ``src/repro``:
  a cross-module lock-order graph with deadlock-cycle detection,
  blocking-call-under-lock detection, ``TRACE.enabled`` fast-path guard
  verification, and ``jni/capi.py`` / ``mpijava`` API-surface drift.
  Run it with ``python -m repro.check.lint src/repro``.

* :mod:`repro.check.sanitizer` — a runtime verification layer for user
  MPI programs (``REPRO_SANITIZE=1``): wait-for-graph deadlock
  detection across blocked ranks, send-buffer-mutation checksums,
  datatype signature checking, per-communicator collective consistency
  and a Finalize-time resource audit.
"""
