"""Abstract models of the mpiJava API (and friends) for the verifier.

:mod:`repro.check.symexec` interprets user code; every call that crosses
into library land — ``MPI.COMM_WORLD.Send(...)``, ``np.zeros(n)``,
``Request.Waitall(...)`` — lands here.  Each model does two jobs:

* **record** the communication event (with byte sizes, buffer spans and
  ``file:line`` anchors) on the rank's trace, and
* **return** an abstract value precise enough to keep rank-dependent
  control flow concrete — ``Rank()`` is the analyzed rank,
  ``Cartcomm.Shift`` runs the runtime's own
  :class:`~repro.runtime.topology.CartTopology` math, ``Create_dims``
  *is* :func:`~repro.runtime.topology.dims_create`.

Anything not modeled degrades to :class:`~repro.check.symexec.Unknown`
(and, for communicator methods, marks the trace inexact) so unmodeled
API surface can cause lost precision but never a false report.
"""

from __future__ import annotations

import ast
from typing import Any, Optional

from repro.runtime.consts import ANY_SOURCE, ANY_TAG, PROC_NULL, TAG_UB
from repro.runtime.topology import CartTopology, dims_create
from repro.check.symexec import (
    Buffer, CollEv, CommV, DatatypeV, FinalizeEv, Interpreter, ModelFn,
    ModuleV, ObjV, OpV, ProbeEv, RecvEv, RequestV, SendEv, StatusV,
    Unknown, WaitEv, is_unknown,
)

_PRIMITIVES = ("BYTE", "CHAR", "SHORT", "BOOLEAN", "INT", "LONG", "FLOAT",
               "DOUBLE", "PACKED", "SHORT2", "INT2", "LONG2", "FLOAT2",
               "DOUBLE2", "OBJECT")

_OPS = ("MAX", "MIN", "SUM", "PROD", "LAND", "LOR", "LXOR", "BAND", "BOR",
        "BXOR", "MAXLOC", "MINLOC")

#: Comm methods that neither communicate nor affect matching.  Revoke
#: is here on purpose: ULFM revocation is asynchronous, never blocks,
#: and any subset of survivors may call it — it is *not* a collective.
_HARMLESS_COMM = {
    "Errhandler_set": None, "Attr_put": None, "Attr_delete": None,
    "Abort": None, "Revoke": None,
}
_HARMLESS_COMM_UNKNOWN = (
    "Errhandler_get", "Attr_get", "Topo_test", "Pack", "Unpack",
    "Pack_size", "Group", "Compare", "Test_inter", "Is_revoked",
)


def _arg(a: list, i: int, name: str = "") -> Any:
    return a[i] if i < len(a) else Unknown(name or f"arg{i}")


def _dtv(v: Any) -> DatatypeV:
    if isinstance(v, DatatypeV):
        return v
    return DatatypeV("?", None, None, name="?")


def _conc_rank(v: Any) -> Optional[int]:
    return v if isinstance(v, int) else None


def _status_for(src: Any, tag: Any) -> StatusV:
    s = src if isinstance(src, int) and src >= 0 else Unknown("status.source")
    t = tag if isinstance(tag, int) and tag >= 0 else Unknown("status.tag")
    return StatusV(s, t)


def _buf_parts(buf: Any, dtv: DatatypeV, offset: Any, count: Any) -> tuple:
    if isinstance(buf, Buffer):
        return buf.bid, dtv.span_for(offset, count)
    return None, None


# ---------------------------------------------------------------------------
# point-to-point
# ---------------------------------------------------------------------------

def _do_send(i: Interpreter, comm: CommV, node: ast.AST, buf, offset,
             count, datatype, dest, tag, mode: str, blocking: bool):
    dtv = _dtv(datatype)
    path, line = i.loc(node)
    if not comm.exact:
        i.trace.inexact_ctxs.add(comm.ctx)
    bid, span = _buf_parts(buf, dtv, offset, count)
    ev = SendEv(path, line, i.cond_depth > 0, ctx=comm.ctx, src=comm.rank,
                dst=dest, tag=tag, sig=dtv.signature(count),
                nbytes=dtv.bytes_for(count), mode=mode, blocking=blocking,
                bid=bid, span=span)
    i.record(ev)
    if blocking:
        return None
    req = RequestV(ev)
    ev.rid = req.rid
    i.trace.requests.append(req)
    return req


def _do_recv(i: Interpreter, comm: CommV, node: ast.AST, buf, offset,
             count, datatype, source, tag, blocking: bool):
    dtv = _dtv(datatype)
    path, line = i.loc(node)
    if not comm.exact:
        i.trace.inexact_ctxs.add(comm.ctx)
    bid, span = _buf_parts(buf, dtv, offset, count)
    ev = RecvEv(path, line, i.cond_depth > 0, ctx=comm.ctx, src=source,
                dst=comm.rank, tag=tag, sig=dtv.signature(count),
                blocking=blocking, bid=bid, span=span)
    i.record(ev)
    if isinstance(buf, list):            # MPI.OBJECT into a Python list
        for j in range(len(buf)):
            buf[j] = Unknown("received object")
    if blocking:
        return _status_for(source, tag)
    req = RequestV(ev)
    ev.rid = req.rid
    i.trace.requests.append(req)
    return req


def _send_model(i: Interpreter, comm: CommV, name: str, mode: str,
                blocking: bool) -> ModelFn:
    def fn(i, a, k, n):
        return _do_send(i, comm, n, _arg(a, 0, "buf"), _arg(a, 1, "offset"),
                        _arg(a, 2, "count"), _arg(a, 3, "datatype"),
                        _arg(a, 4, "dest"), _arg(a, 5, "tag"),
                        mode, blocking)
    return ModelFn(name, fn)


def _recv_model(i: Interpreter, comm: CommV, name: str,
                blocking: bool) -> ModelFn:
    def fn(i, a, k, n):
        return _do_recv(i, comm, n, _arg(a, 0, "buf"), _arg(a, 1, "offset"),
                        _arg(a, 2, "count"), _arg(a, 3, "datatype"),
                        _arg(a, 4, "source"), _arg(a, 5, "tag"), blocking)
    return ModelFn(name, fn)


def _sendrecv(i: Interpreter, comm: CommV, a: list, n: ast.AST,
              replace: bool):
    i._pair_seq += 1
    pair = i._pair_seq
    if replace:      # (buf, offset, count, datatype, dest, stag, source, rtag)
        sbuf, soff, scount, sdt = (_arg(a, 0), _arg(a, 1), _arg(a, 2),
                                   _arg(a, 3))
        dest, stag = _arg(a, 4), _arg(a, 5)
        rbuf, roff, rcount, rdt = sbuf, soff, scount, sdt
        source, rtag = _arg(a, 6), _arg(a, 7)
    else:
        sbuf, soff, scount, sdt = (_arg(a, 0), _arg(a, 1), _arg(a, 2),
                                   _arg(a, 3))
        dest, stag = _arg(a, 4), _arg(a, 5)
        rbuf, roff, rcount, rdt = (_arg(a, 6), _arg(a, 7), _arg(a, 8),
                                   _arg(a, 9))
        source, rtag = _arg(a, 10), _arg(a, 11)
    sev = _do_send(i, comm, n, sbuf, soff, scount, sdt, dest, stag,
                   "standard", True)
    # fish the just-recorded send back out to stamp the pair id
    i.trace.events[-1].pair = pair
    del sev
    st = _do_recv(i, comm, n, rbuf, roff, rcount, rdt, source, rtag, True)
    i.trace.events[-1].pair = pair
    return st


# ---------------------------------------------------------------------------
# collectives
# ---------------------------------------------------------------------------

def _do_coll(i: Interpreter, comm: CommV, node: ast.AST, name: str,
             root: Any, sig: tuple, op: Optional[str], blocking: bool,
             bufs: tuple = ()):
    path, line = i.loc(node)
    if not comm.exact:
        i.trace.inexact_ctxs.add(comm.ctx)
    ev = CollEv(path, line, i.cond_depth > 0, ctx=comm.ctx, name=name,
                root=root, sig=sig, op=op, blocking=blocking, bufs=bufs)
    i.record(ev)
    if blocking:
        return None
    req = RequestV(ev)
    ev.rid = req.rid
    i.trace.requests.append(req)
    return req


def _coll_bufs(dtv_pairs) -> tuple:
    out = []
    for buf, dtv, off, count, mode in dtv_pairs:
        if isinstance(buf, Buffer):
            out.append((buf.bid, dtv.span_for(off, count), mode))
    return tuple(out)


def _make_coll_models(comm: CommV, blocking: bool) -> dict:
    """Models for the (I-prefixed when nonblocking) collective set."""
    pre = "" if blocking else "I"

    def m(name, fn):
        return ModelFn(f"{pre}{name}", fn)

    def barrier(i, a, k, n):
        return _do_coll(i, comm, n, "Barrier", None, (), None, blocking)

    def bcast(i, a, k, n):
        buf, off, count, dt, root = (_arg(a, 0), _arg(a, 1), _arg(a, 2),
                                     _arg(a, 3), _arg(a, 4))
        dtv = _dtv(dt)
        mode = "r" if _conc_rank(root) == _conc_rank(comm.rank) else "w"
        return _do_coll(i, comm, n, "Bcast", root, dtv.signature(count),
                        None, blocking,
                        _coll_bufs([(buf, dtv, off, count, mode)]))

    def gather_like(name):
        def fn(i, a, k, n):
            sbuf, soff, scount, sdt = (_arg(a, 0), _arg(a, 1), _arg(a, 2),
                                       _arg(a, 3))
            rbuf, roff, rcount, rdt = (_arg(a, 4), _arg(a, 5), _arg(a, 6),
                                       _arg(a, 7))
            root = _arg(a, 8) if name in ("Gather", "Scatter") else None
            sdtv, rdtv = _dtv(sdt), _dtv(rdt)
            sig = (sdtv.signature(scount), rdtv.signature(rcount))
            bufs = _coll_bufs([(sbuf, sdtv, soff, scount, "r"),
                               (rbuf, rdtv, roff, rcount, "w")])
            return _do_coll(i, comm, n, name, root, sig, None, blocking,
                            bufs)
        return fn

    def vec_like(name, rootpos):
        def fn(i, a, k, n):
            root = _arg(a, rootpos) if rootpos is not None else None
            return _do_coll(i, comm, n, name, root, ("v",), None, blocking)
        return fn

    def reduce_like(name, has_root):
        def fn(i, a, k, n):
            sbuf, soff, rbuf, roff, count, dt, op = (
                _arg(a, 0), _arg(a, 1), _arg(a, 2), _arg(a, 3),
                _arg(a, 4), _arg(a, 5), _arg(a, 6))
            root = _arg(a, 7) if has_root else None
            dtv = _dtv(dt)
            opname = op.name if isinstance(op, OpV) else None
            bufs = _coll_bufs([(sbuf, dtv, soff, count, "r"),
                               (rbuf, dtv, roff, count, "w")])
            return _do_coll(i, comm, n, name, root, dtv.signature(count),
                            opname, blocking, bufs)
        return fn

    if blocking:
        out = {
            "Barrier": m("Barrier", barrier),
            "Bcast": m("Bcast", bcast),
            "Gather": m("Gather", gather_like("Gather")),
            "Scatter": m("Scatter", gather_like("Scatter")),
            "Allgather": m("Allgather", gather_like("Allgather")),
            "Alltoall": m("Alltoall", gather_like("Alltoall")),
            "Reduce": m("Reduce", reduce_like("Reduce", True)),
            "Allreduce": m("Allreduce", reduce_like("Allreduce", False)),
        }
    else:
        out = {
            "Ibarrier": m("Barrier", barrier),
            "Ibcast": m("Bcast", bcast),
            "Igather": m("Gather", gather_like("Gather")),
            "Iscatter": m("Scatter", gather_like("Scatter")),
            "Iallgather": m("Allgather", gather_like("Allgather")),
            "Ialltoall": m("Alltoall", gather_like("Alltoall")),
            "Ireduce": m("Reduce", reduce_like("Reduce", True)),
            "Iallreduce": m("Allreduce", reduce_like("Allreduce", False)),
        }
    if blocking:
        out.update({
            "Gatherv": m("Gatherv", vec_like("Gatherv", 9)),
            "Scatterv": m("Scatterv", vec_like("Scatterv", 9)),
            "Allgatherv": m("Allgatherv", vec_like("Allgatherv", None)),
            "Alltoallv": m("Alltoallv", vec_like("Alltoallv", None)),
            "Reduce_scatter": m("Reduce_scatter",
                                reduce_like("Reduce_scatter", False)),
            "Scan": m("Scan", reduce_like("Scan", False)),
        })
    return out


# ---------------------------------------------------------------------------
# communicator attribute dispatch
# ---------------------------------------------------------------------------

def comm_attr(i: Interpreter, comm: CommV, attr: str, node: ast.AST) -> Any:
    # plain queries ---------------------------------------------------------
    if attr == "Rank":
        def rank_fn(i, a, k, n):
            if a and comm.topo is not None:
                coords = a[0]
                if isinstance(coords, (list, tuple)) and all(
                        isinstance(c, int) for c in coords):
                    return comm.topo.rank_of(coords)
                return Unknown("Cart rank")
            return comm.rank
        return ModelFn("Rank", rank_fn)
    if attr == "Size":
        return ModelFn("Size", lambda i, a, k, n: comm.size)
    if attr == "Is_null":
        return ModelFn("Is_null", lambda i, a, k, n: False)

    # point-to-point --------------------------------------------------------
    p2p = {
        "Send": ("standard", True), "Bsend": ("bsend", True),
        "Ssend": ("ssend", True), "Rsend": ("rsend", True),
    }
    if attr in p2p:
        mode, blocking = p2p[attr]
        return _send_model(i, comm, attr, mode, blocking)
    ip2p = {
        "Isend": ("standard",), "Ibsend": ("bsend",),
        "Issend": ("ssend",), "Irsend": ("rsend",),
    }
    if attr in ip2p:
        return _send_model(i, comm, attr, ip2p[attr][0], False)
    if attr == "Recv":
        return _recv_model(i, comm, attr, True)
    if attr == "Irecv":
        return _recv_model(i, comm, attr, False)
    if attr == "Sendrecv":
        return ModelFn("Sendrecv",
                       lambda i, a, k, n: _sendrecv(i, comm, a, n, False))
    if attr == "Sendrecv_replace":
        return ModelFn("Sendrecv_replace",
                       lambda i, a, k, n: _sendrecv(i, comm, a, n, True))
    if attr in ("Probe", "Iprobe"):
        blocking = attr == "Probe"

        def probe_fn(i, a, k, n):
            source, tag = _arg(a, 0, "source"), _arg(a, 1, "tag")
            path, line = i.loc(n)
            i.record(ProbeEv(path, line, i.cond_depth > 0, ctx=comm.ctx,
                             src=source, dst=comm.rank, tag=tag,
                             blocking=blocking))
            if blocking:
                return _status_for(source, tag)
            return Unknown("Iprobe status")
        return ModelFn(attr, probe_fn)

    # collectives -----------------------------------------------------------
    colls = _make_coll_models(comm, True)
    if attr in colls:
        return colls[attr]
    icolls = _make_coll_models(comm, False)
    if attr in icolls:
        return icolls[attr]

    # communicator management ----------------------------------------------
    if attr == "Dup":
        def dup_fn(i, a, k, n):
            ctx = i.new_ctx("dup")
            _do_coll(i, comm, n, "Dup", None, (ctx,), None, True)
            return CommV(ctx, comm.size, comm.rank, comm.topo, comm.exact)
        return ModelFn("Dup", dup_fn)
    if attr == "Free":
        return ModelFn("Free", lambda i, a, k, n: _do_coll(
            i, comm, n, "Free", None, (), None, True))
    if attr in ("Split", "Create", "Create_graph", "Create_intercomm"):
        def split_fn(i, a, k, n, attr=attr):
            ctx = i.new_ctx(attr.lower())
            _do_coll(i, comm, n, attr, None, (ctx,), None, True)
            new = CommV(ctx, Unknown("size"), Unknown("rank"), None,
                        exact=False)
            i.trace.inexact_ctxs.add(ctx)
            return new
        return ModelFn(attr, split_fn)
    # ULFM fault tolerance: Shrink and Agree are collectives over the
    # survivors — every live member must call them, so a rank-divergent
    # recovery path is a coll-mismatch like any other.  The shrunken
    # communicator's membership only exists at runtime (it depends on
    # which ranks died), so the result is inexact.
    if attr == "Shrink":
        def shrink_fn(i, a, k, n):
            ctx = i.new_ctx("shrink")
            _do_coll(i, comm, n, "Shrink", None, (ctx,), None, True)
            new = CommV(ctx, Unknown("size"), Unknown("rank"), None,
                        exact=False)
            i.trace.inexact_ctxs.add(ctx)
            return new
        return ModelFn("Shrink", shrink_fn)
    if attr == "Agree":
        def agree_fn(i, a, k, n):
            _do_coll(i, comm, n, "Agree", None, ("flag",), "band", True)
            return Unknown("Agree")
        return ModelFn("Agree", agree_fn)
    if attr == "Create_cart":
        def cart_fn(i, a, k, n):
            dims, periods = _arg(a, 0, "dims"), _arg(a, 1, "periods")
            ctx = i.new_ctx("cart")
            conc = (isinstance(dims, (list, tuple))
                    and all(isinstance(d, int) for d in dims)
                    and isinstance(periods, (list, tuple))
                    and isinstance(comm.rank, int))
            sig = (ctx, tuple(dims) if conc else ("?",))
            _do_coll(i, comm, n, "Create_cart", None, sig, None, True)
            if not conc:
                new = CommV(ctx, Unknown("size"), Unknown("rank"), None,
                            exact=False)
                i.trace.inexact_ctxs.add(ctx)
                return new
            topo = CartTopology(list(dims),
                                [bool(p) and not is_unknown(p)
                                 for p in periods])
            return CommV(ctx, topo.size, comm.rank, topo, comm.exact)
        return ModelFn("Create_cart", cart_fn)

    # cartesian topology (concrete math via the runtime's own module) ------
    if comm.topo is not None and isinstance(comm.rank, int):
        topo = comm.topo
        if attr == "Shift":
            def shift_fn(i, a, k, n):
                d, disp = _arg(a, 0), _arg(a, 1)
                if isinstance(d, int) and isinstance(disp, int):
                    src, dst = topo.shift(comm.rank, d, disp)
                    return ObjV({"rank_source": src, "rank_dest": dst})
                return ObjV({"rank_source": Unknown("shift"),
                             "rank_dest": Unknown("shift")})
            return ModelFn("Shift", shift_fn)
        if attr == "Get":
            return ModelFn("Get", lambda i, a, k, n: ObjV({
                "dims": list(topo.dims), "periods": list(topo.periods),
                "coords": topo.coords_of(comm.rank)}))
        if attr == "Dim":
            return ModelFn("Dim", lambda i, a, k, n: topo.ndims)
        if attr == "Coords":
            return ModelFn("Coords", lambda i, a, k, n: (
                topo.coords_of(a[0]) if a and isinstance(a[0], int)
                else Unknown("coords")))
        if attr == "Sub":
            def sub_fn(i, a, k, n):
                remain = _arg(a, 0)
                ctx = i.new_ctx("cartsub")
                _do_coll(i, comm, n, "Sub", None, (ctx,), None, True)
                if not (isinstance(remain, (list, tuple))
                        and all(isinstance(r, (bool, int)) for r in remain)):
                    new = CommV(ctx, Unknown("size"), Unknown("rank"),
                                None, exact=False)
                    i.trace.inexact_ctxs.add(ctx)
                    return new
                color, key, kd, kp = topo.sub_keep(list(remain), comm.rank)
                sub = CartTopology(kd, kp) if kd else None
                size = sub.size if sub else 1
                return CommV(f"{ctx}:c{color}", size, key, sub, comm.exact)
            return ModelFn("Sub", sub_fn)
        if attr == "Map":
            return ModelFn("Map", lambda i, a, k, n: comm.rank)

    # harmless non-communication methods ------------------------------------
    if attr in _HARMLESS_COMM:
        return ModelFn(attr, lambda i, a, k, n: None)
    if attr in _HARMLESS_COMM_UNKNOWN:
        return ModelFn(attr, lambda i, a, k, n: Unknown(f"Comm.{attr}"))

    # anything else might communicate: degrade soundly
    def unmodeled(i, a, k, n):
        i.trace.mark_inexact(f"unmodeled communicator method {attr}")
        return Unknown(f"Comm.{attr}")
    return ModelFn(attr, unmodeled)


# ---------------------------------------------------------------------------
# datatypes
# ---------------------------------------------------------------------------

def _derive(i: Interpreter, node: ast.AST, base: DatatypeV, name: str,
            units: Optional[int], extent: Optional[int]) -> DatatypeV:
    bu = base.units if isinstance(base.units, int) else None
    be = base.extent if isinstance(base.extent, int) else None
    dt = DatatypeV(
        base.base,
        units * bu if (units is not None and bu is not None) else None,
        extent * be if (extent is not None and be is not None) else None,
        derived=True, site=i.loc(node), name=f"{base.name}.{name}")
    i.trace.datatypes.append(dt)
    return dt


def datatype_attr(i: Interpreter, dt: DatatypeV, attr: str,
                  node: ast.AST) -> Any:
    if attr == "Vector":
        def fn(i, a, k, n):
            count, bl, stride = _arg(a, 0), _arg(a, 1), _arg(a, 2)
            if all(isinstance(x, int) for x in (count, bl, stride)):
                return _derive(i, n, dt, "Vector", count * bl,
                               (count - 1) * stride + bl if count > 0 else 0)
            return _derive(i, n, dt, "Vector", None, None)
        return ModelFn("Vector", fn)
    if attr == "Hvector":
        def fn(i, a, k, n):
            count, bl = _arg(a, 0), _arg(a, 1)
            units = count * bl if all(
                isinstance(x, int) for x in (count, bl)) else None
            return _derive(i, n, dt, "Hvector", units, None)
        return ModelFn("Hvector", fn)
    if attr == "Contiguous":
        def fn(i, a, k, n):
            count = _arg(a, 0)
            c = count if isinstance(count, int) else None
            return _derive(i, n, dt, "Contiguous", c, c)
        return ModelFn("Contiguous", fn)
    if attr in ("Indexed", "Hindexed"):
        def fn(i, a, k, n, attr=attr):
            bls, disps = _arg(a, 0), _arg(a, 1)
            units = extent = None
            if isinstance(bls, (list, tuple)) and all(
                    isinstance(b, int) for b in bls):
                units = sum(bls)
                if attr == "Indexed" and isinstance(disps, (list, tuple)) \
                        and all(isinstance(d, int) for d in disps) \
                        and len(disps) == len(bls) and bls:
                    extent = max(d + b for d, b in zip(disps, bls))
            return _derive(i, n, dt, attr, units, extent)
        return ModelFn(attr, fn)
    if attr == "Struct":
        def fn(i, a, k, n):
            out = DatatypeV("?", None, None, derived=True, site=i.loc(n),
                            name="Struct")
            i.trace.datatypes.append(out)
            return out
        return ModelFn("Struct", fn)
    if attr == "Commit":
        def fn(i, a, k, n):
            dt.committed = True
            return dt
        return ModelFn("Commit", fn)
    if attr == "Free":
        def fn(i, a, k, n):
            dt.freed = True
            return None
        return ModelFn("Free", fn)
    if attr == "Extent":
        return ModelFn("Extent", lambda i, a, k, n: (
            dt.extent if isinstance(dt.extent, int) else Unknown("extent")))
    if attr == "Size":
        def fn(i, a, k, n):
            eb = dt.elem_bytes
            if eb is not None and isinstance(dt.units, int):
                return dt.units * eb
            return Unknown("size")
        return ModelFn("Size", fn)
    if attr == "Lb":
        return ModelFn("Lb", lambda i, a, k, n: 0)
    if attr == "Ub":
        return ModelFn("Ub", lambda i, a, k, n: (
            dt.extent if isinstance(dt.extent, int) else Unknown("ub")))
    return ModelFn(attr, lambda i, a, k, n: Unknown(f"Datatype.{attr}"))


# ---------------------------------------------------------------------------
# requests
# ---------------------------------------------------------------------------

def _status_of(req: RequestV) -> StatusV:
    ev = req.event
    if isinstance(ev, RecvEv):
        return _status_for(ev.src, ev.tag)
    return StatusV(Unknown("status.source"), Unknown("status.tag"))


def request_attr(i: Interpreter, req: RequestV, attr: str,
                 node: ast.AST) -> Any:
    if attr in ("Wait", "Test"):
        def fn(i, a, k, n, attr=attr):
            path, line = i.loc(n)
            req.observed = True
            i.record(WaitEv(path, line, i.cond_depth > 0,
                            rids=(req.rid,), kind=attr.lower()))
            if attr == "Wait":
                return _status_of(req)
            return Unknown("Test status")
        return ModelFn(attr, fn)
    if attr in ("Cancel", "Free"):
        def fn(i, a, k, n):
            req.observed = True
            return None
        return ModelFn(attr, fn)
    if attr == "Is_null":
        return ModelFn("Is_null", lambda i, a, k, n: req.observed)
    return ModelFn(attr, lambda i, a, k, n: Unknown(f"Request.{attr}"))


def _request_list(v: Any) -> Optional[list]:
    if isinstance(v, (list, tuple)):
        return [r for r in v if isinstance(r, RequestV)]
    return None


def _request_cls() -> ModuleV:
    def multi(kind, returns):
        def fn(i, a, k, n):
            reqs = _request_list(_arg(a, 0, "requests"))
            path, line = i.loc(n)
            if reqs is None:
                i.trace.mark_inexact(f"{kind} over unknown request list")
                i.record(WaitEv(path, line, i.cond_depth > 0, rids=(),
                                kind=kind))
                return Unknown(kind)
            for r in reqs:
                r.observed = True
            i.record(WaitEv(path, line, i.cond_depth > 0,
                            rids=tuple(r.rid for r in reqs), kind=kind))
            if returns == "statuses":
                return [_status_of(r) for r in reqs]
            if returns == "status":
                return StatusV(Unknown("status.source"),
                               Unknown("status.tag"))
            return Unknown(kind)
        return ModelFn(kind, fn)

    return ModuleV("Request", {
        "Waitall": multi("waitall", "statuses"),
        "Waitany": multi("waitany", "status"),
        "Waitsome": multi("waitsome", "statuses"),
        "Testall": multi("testall", "maybe"),
        "Testany": multi("testany", "maybe"),
        "Testsome": multi("testsome", "statuses"),
    })


# ---------------------------------------------------------------------------
# the MPI static class + module tree
# ---------------------------------------------------------------------------

def _mpi_object(i: Interpreter) -> ModuleV:
    cached = i._module_cache.get("<MPI>")
    if cached is not None:
        return cached

    def finalize(i, a, k, n):
        path, line = i.loc(n)
        i.record(FinalizeEv(path, line, i.cond_depth > 0))
        i.trace.finalized = True
        return None

    def to_chars(i, a, k, n):
        s = _arg(a, 0)
        return Buffer(len(s) if isinstance(s, str) else None)

    def new_chars(i, a, k, n):
        c = _arg(a, 0)
        return Buffer(c if isinstance(c, int) else None)

    attrs: dict[str, Any] = {
        "COMM_WORLD": CommV("world", i.nprocs, i.rank),
        "COMM_SELF": CommV("self", 1, 0, exact=False),
        "COMM_NULL": None,
        "ANY_SOURCE": ANY_SOURCE, "ANY_TAG": ANY_TAG,
        "PROC_NULL": PROC_NULL, "TAG_UB": TAG_UB, "UNDEFINED": -1,
        "Init": ModelFn("Init", lambda i, a, k, n: (
            a[0] if a and isinstance(a[0], list) else [])),
        "Finalize": ModelFn("Finalize", finalize),
        "Initialized": ModelFn("Initialized", lambda i, a, k, n: True),
        "Wtime": ModelFn("Wtime", lambda i, a, k, n: Unknown("Wtime")),
        "Wtick": ModelFn("Wtick", lambda i, a, k, n: Unknown("Wtick")),
        "Get_processor_name": ModelFn(
            "Get_processor_name", lambda i, a, k, n: Unknown("host")),
        "Attach_buffer": ModelFn("Attach_buffer",
                                 lambda i, a, k, n: None),
        "Detach_buffer": ModelFn("Detach_buffer",
                                 lambda i, a, k, n: Unknown("buffer")),
        "to_chars": ModelFn("to_chars", to_chars),
        "new_chars": ModelFn("new_chars", new_chars),
        "from_chars": ModelFn("from_chars",
                              lambda i, a, k, n: Unknown("chars")),
    }
    for name in _PRIMITIVES:
        attrs[name] = DatatypeV(name, 1, 1, name=f"MPI.{name}")
    for name in _OPS:
        attrs[name] = OpV(name)
    mpi = ModuleV("MPI", attrs, permissive=True)
    i._module_cache["<MPI>"] = mpi
    return mpi


# ---------------------------------------------------------------------------
# numpy (buffers with known element counts, unknown contents)
# ---------------------------------------------------------------------------

def _shape_of(v: Any) -> Optional[tuple]:
    if isinstance(v, int):
        return (v,)
    if isinstance(v, (tuple, list)) and all(isinstance(d, int) for d in v):
        return tuple(v)
    return None


def _nelems(shape: Optional[tuple]) -> Optional[int]:
    if shape is None:
        return None
    n = 1
    for d in shape:
        n *= d
    return n


def _numpy_module(i: Interpreter) -> ModuleV:
    def alloc(i, a, k, n):
        shape = _shape_of(_arg(a, 0, "shape"))
        return Buffer(_nelems(shape), shape)

    def np_array(i, a, k, n):
        v = _arg(a, 0)
        if isinstance(v, (list, tuple)):
            return Buffer(len(v), (len(v),))
        if isinstance(v, Buffer):
            return Buffer(v.nelems, v.shape)
        return Buffer(None)

    def np_arange(i, a, k, n):
        conc = [x for x in a if isinstance(x, (int, float))]
        if len(conc) == len([x for x in a if not isinstance(x, str)]) \
                and conc:
            try:
                cnt = len(range(*[int(x) for x in conc[:3]]))
                return Buffer(cnt, (cnt,))
            except Exception:
                pass
        return Buffer(None)

    def elementwise(i, a, k, n):
        v = _arg(a, 0)
        if isinstance(v, Buffer):
            return Buffer(v.nelems, v.shape)
        return Unknown("ufunc")

    def scalar(i, a, k, n):
        return Unknown("reduction")

    def rng_alloc(i, a, k, n):
        shape = _shape_of(_arg(a, 0, "shape"))
        return Buffer(_nelems(shape), shape)

    rng = ModuleV("numpy.random.Generator", {
        "random": ModelFn("random", rng_alloc),
        "standard_normal": ModelFn("standard_normal", rng_alloc),
        "integers": ModelFn("integers", lambda i, a, k, n: (
            Buffer(_nelems(_shape_of(k.get("size", _arg(a, 2))))
                   if (k.get("size") is not None or len(a) > 2)
                   else None))),
        "uniform": ModelFn("uniform", rng_alloc),
    }, permissive=True)

    random_mod = ModuleV("numpy.random", {
        "default_rng": ModelFn("default_rng", lambda i, a, k, n: rng),
        "seed": ModelFn("seed", lambda i, a, k, n: None),
        "rand": ModelFn("rand", lambda i, a, k, n: Buffer(
            _nelems(_shape_of(tuple(a))) if a else None)),
    }, permissive=True)

    attrs: dict[str, Any] = {
        "zeros": ModelFn("zeros", alloc),
        "empty": ModelFn("empty", alloc),
        "ones": ModelFn("ones", alloc),
        "full": ModelFn("full", alloc),
        "zeros_like": ModelFn("zeros_like", elementwise),
        "empty_like": ModelFn("empty_like", elementwise),
        "array": ModelFn("array", np_array),
        "asarray": ModelFn("asarray", np_array),
        "arange": ModelFn("arange", np_arange),
        "linspace": ModelFn("linspace", lambda i, a, k, n: Buffer(
            a[2] if len(a) > 2 and isinstance(a[2], int) else None)),
        "abs": ModelFn("abs", elementwise),
        "sqrt": ModelFn("sqrt", elementwise),
        "exp": ModelFn("exp", elementwise),
        "sin": ModelFn("sin", elementwise),
        "cos": ModelFn("cos", elementwise),
        "sum": ModelFn("sum", scalar),
        "max": ModelFn("max", scalar),
        "min": ModelFn("min", scalar),
        "mean": ModelFn("mean", scalar),
        "dot": ModelFn("dot", lambda i, a, k, n: (
            Buffer(a[0].nelems, a[0].shape)
            if a and isinstance(a[0], Buffer) else Unknown("dot"))),
        "isclose": ModelFn("isclose", scalar),
        "allclose": ModelFn("allclose", scalar),
        "random": random_mod,
        "float64": "float64", "float32": "float32", "int64": "int64",
        "int32": "int32", "int16": "int16", "int8": "int8",
        "uint16": "uint16", "uint8": "uint8", "bool_": "bool_",
        "pi": 3.141592653589793,
        "nan": float("nan"), "inf": float("inf"),
    }
    return ModuleV("numpy", attrs, permissive=True)


# ---------------------------------------------------------------------------
# module resolution
# ---------------------------------------------------------------------------

def module_for(name: str, i: Interpreter) -> ModuleV:
    if name in ("numpy", "np"):
        return _numpy_module(i)
    if name == "math":
        import math
        return ModuleV("math", {n: getattr(math, n) for n in dir(math)
                                if not n.startswith("_")}, permissive=True)
    if name == "sys":
        return ModuleV("sys", {
            "argv": [Unknown("argv0")],
            "maxsize": 2 ** 63 - 1,
            "stdout": Unknown("stdout"), "stderr": Unknown("stderr"),
            "exit": ModelFn("exit", lambda i, a, k, n: Unknown("exit")),
            "path": [],
        }, permissive=True)
    if name == "repro":
        return ModuleV("repro", {
            "mpirun": ModelFn("mpirun", lambda i, a, k, n:
                              Unknown("mpirun result")),
            "procrun": ModelFn("procrun", lambda i, a, k, n:
                               Unknown("procrun result")),
            "mpijava": module_for("repro.mpijava", i),
        }, permissive=True)
    if name in ("repro.mpijava", "repro.mpijava.mpi"):
        return ModuleV(name, {"MPI": _mpi_object(i)}, permissive=True)
    if name == "repro.mpijava.cartcomm":
        def create_dims(i, a, k, n):
            nnodes, dims = _arg(a, 0), _arg(a, 1)
            if isinstance(nnodes, int) and isinstance(dims, (list, tuple)) \
                    and all(isinstance(d, int) for d in dims):
                return dims_create(nnodes, list(dims))
            return Unknown("Create_dims")
        cartcomm = ModuleV("Cartcomm", {
            "Create_dims": ModelFn("Create_dims", create_dims),
        }, permissive=True)
        return ModuleV(name, {"Cartcomm": cartcomm}, permissive=True)
    if name == "repro.mpijava.request":
        return ModuleV(name, {"Request": _request_cls()}, permissive=True)
    # everything else (os, json, repro.obs, repro.bench, user helpers
    # the loader didn't inline, ...) is a permissive stub
    return ModuleV(name, {}, permissive=True)
