"""Runtime MPI correctness sanitizer (``REPRO_SANITIZE=1``).

A MUST/Umpire-style *dynamic* verification layer for user MPI programs,
installed per :class:`~repro.runtime.engine.Universe` when the
environment enables it.  Five checks:

**Deadlock detection** (not a timeout): every blocked specific-source
receive (and synchronous send) registers a wait-for edge and runs a
Chandy-Misra-Haas-style edge-chasing probe loop.  Probes are
``KIND_SANITIZE`` envelopes riding the normal transport, so the scheme
is identical on all three backends (threads-SM, threads-DM sockets,
process-per-rank TCP).  A probe travels along wait-for edges — each
blocked rank forwards it *from its own wait loop* (pump threads never
write, preserving the wire discipline) — and a cycle is declared when
the initiator receives its own probe back with every hop still in the
same wait incarnation, twice in a row.  The diagnostic names the cycle
and each rank's pending envelopes; the blocked request completes with
``ERR_OTHER`` carrying it.

For two-rank cycles the detection is *exact*: probes share the FIFO
data channels, so when the probe returns, all data either rank sent
before probing has already been delivered and failed to match — with
both ranks provably blocked on each other, no future message can exist.
Longer cycles use the two-round incarnation check, which is the
standard edge-chasing confirmation.  ``MPI_ANY_SOURCE`` receives post
no edge (any sender could complete them).

**Send-buffer mutation**: ``Isend`` snapshots a checksum of the user's
send window; the first ``Wait``/successful ``Test`` — the moment MPI
returns buffer ownership — recomputes and raises on mismatch.  The
snapshot hashes the *user buffer*, not the wire payload, so mutation is
caught even on backends that gather a private copy eagerly.

**Datatype signatures**: arriving envelopes carry their element dtype
and count in the wire header; landing cross-checks them against the
posted receive's type signature and raises ``ERR_TYPE`` with a
sanitizer diagnostic on mismatch.

**Collective consistency**: a PMPI profiler records, per communicator
(by collective context id) and per call index, the operation name, root
and datatype signature; a rank deviating from what another rank already
recorded raises immediately instead of hanging.  Cross-rank comparison
needs the ranks to share the process (threads backends); the
process-per-rank backend still gets the call-order bookkeeping locally.

**Finalize audit**: after the Finalize barrier each rank reports
unexpected-queue leftovers, never-completed requests, dynamically
created datatypes never freed, and a still-attached bsend buffer — to
stderr by default, raising under ``REPRO_SANITIZE_STRICT=1``.

Tunables: ``REPRO_SANITIZE_PROBE_MS`` (wait-loop tick, default 40).
"""

from __future__ import annotations

import itertools
import os
import pickle
import sys
import threading
import weakref
import zlib

from repro.errors import MPIException, ERR_OTHER, ERR_TYPE
from repro.mpijava.profiler import CommProfiler
from repro.runtime.envelope import Envelope, KIND_SANITIZE

#: collective entry points checked for cross-rank consistency, with the
#: positions of the root and (send) datatype handle in the capi arg
#: tuple (position 0 is the comm handle); None = the op has no root /
#: no datatype
_COLL_ARGS: dict[str, tuple] = {
    "Barrier": (None, None), "Ibarrier": (None, None),
    "Bcast": (5, 4), "Ibcast": (5, 4),
    "Gather": (9, 4), "Igather": (9, 4),
    "Gatherv": (10, 4),
    "Scatter": (9, 4), "Iscatter": (9, 4),
    "Scatterv": (10, 5),
    "Allgather": (None, 4), "Iallgather": (None, 4),
    "Allgatherv": (None, 4),
    "Alltoall": (None, 4), "Ialltoall": (None, 4),
    "Alltoallv": (None, 5),
    "Reduce": (8, 6), "Ireduce": (8, 6),
    "Allreduce": (None, 6), "Iallreduce": (None, 6),
    "Reduce_scatter": (None, 6),
    "Scan": (None, 6),
}


class _BlockedWait:
    """One rank's current blocking wait (at most one per rank thread).

    ``req`` is None for *transport-level* waits (a sender stalled on a
    full shm ring, a receiver stalled on ring data): there is no MPI
    request to fail, so a confirmed cycle is reported rather than
    completed-with-error.
    """

    __slots__ = ("rank", "wait_id", "waiting_on", "ctx", "tag", "op",
                 "req")

    def __init__(self, rank, wait_id, waiting_on, ctx, tag, op, req):
        self.rank = rank
        self.wait_id = wait_id
        self.waiting_on = waiting_on
        self.ctx = ctx
        self.tag = tag
        self.op = op
        self.req = req

    def describe(self) -> str:
        if self.req is None:
            return f"{self.op}(peer={self.waiting_on})"
        return (f"{self.op}(source={self.waiting_on}, tag={self.tag}, "
                f"ctx={self.ctx})")


class Sanitizer:
    """Per-universe dynamic verification state."""

    def __init__(self, universe):
        self.universe = universe
        self.enabled = True
        self.strict = os.environ.get("REPRO_SANITIZE_STRICT") == "1"
        self.probe_interval = max(
            0.005,
            int(os.environ.get("REPRO_SANITIZE_PROBE_MS", "40")) / 1000.0)
        self._lock = threading.Lock()
        self._wait_ids = itertools.count(1)
        #: world rank -> its current _BlockedWait
        self._blocked: dict[int, _BlockedWait] = {}
        #: world rank -> probes delivered while it was blocked
        self._inbox: dict[int, list[dict]] = {}
        #: returned-cycle signature -> times seen (two-round confirm)
        self._suspects: dict[tuple, int] = {}
        #: all requests ever created in this universe (Finalize audit)
        self._requests: "weakref.WeakSet" = weakref.WeakSet()
        self._coll_lock = threading.Lock()
        #: coll ctx -> [(name, root, dtype_sig, first_rank), ...]
        self._coll_log: dict[int, list[tuple]] = {}
        #: (coll ctx, world rank) -> next call index
        self._coll_idx: dict[tuple, int] = {}
        self._profiler: "_CollConsistencyProfiler | None" = None
        #: diagnostics kept for tests / tooling
        self.deadlock_reports: list[str] = []
        self.finalize_reports: dict[int, list[str]] = {}

    # -- lifecycle ----------------------------------------------------------
    def install(self) -> "Sanitizer":
        from repro.mpijava import profiler
        self._profiler = _CollConsistencyProfiler(self)
        profiler.attach(self._profiler)
        return self

    def uninstall(self) -> None:
        if self._profiler is not None:
            from repro.mpijava import profiler
            profiler.detach(self._profiler)
            self._profiler = None

    # -- request tracking (Finalize audit) ----------------------------------
    def note_request(self, req) -> None:
        from repro.runtime.engine import try_current_runtime
        rt = try_current_runtime()
        req.san_rank = rt.world_rank if rt is not None else -1
        self._requests.add(req)

    # -- send-buffer mutation checksums --------------------------------------
    def snapshot_send(self, buf, offset, count, datatype):
        """Checksum the user's send window; returns a verifier or None.

        The verifier is stashed on the request and invoked at the first
        Wait/Test that observes completion — the MPI-defined moment the
        buffer returns to user ownership.
        """
        if datatype.base.is_object:
            return None
        crc = self._window_crc(buf, offset, count, datatype)

        def verify():
            now = self._window_crc(buf, offset, count, datatype)
            if now != crc:
                raise MPIException(
                    ERR_OTHER,
                    f"sanitizer: send buffer mutated before completion "
                    f"(checksum {crc:#010x} at Isend, {now:#010x} at "
                    f"Wait/Test) — an in-flight send buffer is owned by "
                    f"MPI until its request completes")
        return verify

    @staticmethod
    def _window_crc(buf, offset, count, datatype) -> int:
        from repro.runtime.buffers import extract_send_payload
        import numpy as np
        payload, _, _ = extract_send_payload(buf, offset, count, datatype,
                                             allow_view=False)
        return zlib.crc32(memoryview(np.ascontiguousarray(payload))
                          .cast("B"))

    # -- datatype signature check -------------------------------------------
    def check_signature(self, env, datatype, count):
        """Cross-check an arriving envelope against the posted type.

        Returns a ``(count, error, message)`` land-result on mismatch,
        None when the signature agrees (landing proceeds normally).
        """
        payload = getattr(env, "payload", None)
        if payload is None or env.is_object or datatype.base.is_object:
            return None     # object traffic: land_payload's checks apply
        if getattr(payload, "shape", (0,))[0] == 0:
            return None     # empty message: no element data to disagree
        want = datatype.base.np_dtype
        if payload.dtype != want:
            return 0, ERR_TYPE, (
                f"sanitizer: datatype signature mismatch: message from "
                f"rank {env.src} (tag {env.tag}, ctx {env.context}) "
                f"carries {payload.shape[0]} x {payload.dtype} but the "
                f"posted receive expects {datatype.base.name} "
                f"(signature {self.signature_hash(payload.dtype):#010x} "
                f"!= {self.signature_hash(want):#010x})")
        return None

    @staticmethod
    def signature_hash(np_dtype) -> int:
        return zlib.crc32(np_dtype.str.encode())

    # -- deadlock detection ---------------------------------------------------
    def sanitized_wait(self, req) -> None:
        """Drop-in for ``Event.wait`` inside ``RequestImpl.wait``.

        Non-edge-carrying waits (no specific peer) fall back to a plain
        blocking wait; edge-carrying ones tick the probe protocol.
        """
        info = getattr(req, "sanitize_block", None)
        if info is None:
            req._event.wait()
            return
        rank, waiting_on, ctx, tag, op = info
        wid = next(self._wait_ids)
        bw = _BlockedWait(rank, wid, waiting_on, ctx, tag, op, req)
        with self._lock:
            self._blocked[rank] = bw
        try:
            while not req._event.wait(self.probe_interval):
                if self.universe.aborted:
                    break
                self._tick(bw)
        finally:
            with self._lock:
                if self._blocked.get(rank) is bw:
                    del self._blocked[rank]
                self._inbox.pop(rank, None)

    # -- transport-level waits (shm ring space / ring data) ------------------
    def transport_wait_begin(self, rank: int, peer: int, what: str):
        """A rank thread blocked *inside the transport* (e.g. on shm
        ring space): register the wait-for edge so the cycle detector
        sees through the transport layer.  Returns the wait token, or
        None when the rank's wait slot is already taken (an MPI-level
        wait owns the edge — it subsumes the transport stall)."""
        wid = next(self._wait_ids)
        bw = _BlockedWait(rank, wid, peer, -1, -1, f"shm.{what}", None)
        with self._lock:
            if rank in self._blocked:
                return None
            self._blocked[rank] = bw
        return bw

    def transport_wait_tick(self, bw) -> None:
        """One probe round for a transport-level wait.  Probes go out of
        band (``transport.send_oob``) — a rank stalled on a full ring
        cannot push a probe through that same ring, and the channel lock
        it holds makes the attempt a self-deadlock."""
        if bw is not None and not self.universe.aborted:
            self._tick(bw, oob=True)

    def transport_wait_end(self, bw) -> None:
        if bw is None:
            return
        with self._lock:
            if self._blocked.get(bw.rank) is bw:
                del self._blocked[bw.rank]
                self._inbox.pop(bw.rank, None)

    def on_deliver(self, env: Envelope) -> None:
        """Transport delivered a probe (any thread, including pumps).

        Only queues — forwarding happens in the target rank's own wait
        loop, because pump threads must never write to the wire.  Probes
        for a rank that is not blocked are dropped: the initiator
        re-probes every tick, so nothing is lost, and the inbox stays
        bounded.
        """
        probe = pickle.loads(bytes(env.payload))
        with self._lock:
            if env.dst not in self._blocked:
                return
            self._inbox.setdefault(env.dst, []).append(probe)

    def _tick(self, bw: _BlockedWait, oob: bool = False) -> None:
        """One probe round for a blocked rank: drain inbox, re-originate."""
        with self._lock:
            if self._blocked.get(bw.rank) is not bw:
                return
            inbox = self._inbox.pop(bw.rank, [])
        for probe in inbox:
            if probe["path"][0][0] == bw.rank:
                # our own probe came back around the cycle
                if probe["path"][0][1] == bw.wait_id:
                    self._returned(bw, probe)
                continue
            if any(r == bw.rank for r, _ in probe["path"]):
                continue    # stale loop not through the initiator
            fwd = {
                "path": probe["path"] + [(bw.rank, bw.wait_id)],
                "waits": {**probe["waits"], bw.rank: bw.describe()},
                "pending": {**probe["pending"],
                            bw.rank: self._pending_of(bw.rank)},
            }
            self._send_probe(fwd, bw.waiting_on, bw.rank, oob)
        self._send_probe({
            "path": [(bw.rank, bw.wait_id)],
            "waits": {bw.rank: bw.describe()},
            "pending": {bw.rank: self._pending_of(bw.rank)},
        }, bw.waiting_on, bw.rank, oob)

    def _returned(self, bw: _BlockedWait, probe: dict) -> None:
        """Initiator got its own probe back: confirm, then report."""
        signature = (bw.rank, tuple(probe["path"]))
        with self._lock:
            seen = self._suspects[signature] = \
                self._suspects.get(signature, 0) + 1
        if seen < 2 and len(probe["path"]) > 2:
            # cycles longer than two ranks use the two-round
            # incarnation confirmation (see module docstring)
            return
        ranks = [r for r, _ in probe["path"]]
        cycle = " -> ".join(f"rank {r}" for r in ranks + [ranks[0]])
        waits = "; ".join(
            f"rank {r} blocked in {probe['waits'][r]}" for r in ranks)
        pending = "; ".join(
            f"pending at rank {r}: "
            f"{', '.join(probe['pending'][r]) or 'nothing'}"
            for r in ranks)
        msg = (f"sanitizer: deadlock detected: cycle {cycle}; "
               f"{waits}; {pending}")
        self.deadlock_reports.append(msg)
        if bw.req is None:
            # transport-level wait: nothing to complete — name the cycle
            # for whoever is watching (a peer's MPI-level wait in the
            # same cycle fails its own request when its probe returns)
            print(msg, file=sys.stderr)
            return
        bw.req.complete(error=ERR_OTHER, error_message=msg)

    def _pending_of(self, rank: int) -> list[str]:
        mb = self.universe.mailboxes[rank]
        return mb.pending_summary() if mb is not None else []

    def _send_probe(self, probe: dict, dst: int, src: int,
                    oob: bool = False) -> None:
        env = Envelope(kind=KIND_SANITIZE, src=src, dst=dst,
                       payload=pickle.dumps(probe, protocol=4),
                       is_object=True)
        transport = self.universe.transport
        send = transport.send
        if oob:
            # probes for transport-level waits must not ride the wedged
            # data path; transports without an oob lane drop them (the
            # probe re-originates every tick, so nothing is lost)
            send = getattr(transport, "send_oob", None)
            if send is None:
                return
        try:
            send(env)
        except Exception:
            pass    # peer tearing down: the job is ending anyway

    # -- collective consistency ----------------------------------------------
    def check_collective(self, rt, name: str, args: tuple) -> None:
        root_pos, dtype_pos = _COLL_ARGS[name]
        from repro.jni.handles import tables_for
        tables = tables_for(rt)
        try:
            impl = tables.comms.lookup(args[0])
        except MPIException:
            return
        root = args[root_pos] if root_pos is not None \
            and root_pos < len(args) else None
        dtype_sig = None
        if dtype_pos is not None and dtype_pos < len(args):
            try:
                dt = tables.datatypes.lookup(args[dtype_pos])
                dtype_sig = (dt.base.name, dt.size_elems)
            except MPIException:
                pass
        ctx = impl.ctx_coll
        rank = rt.world_rank
        record = (name, root, dtype_sig)
        with self._coll_lock:
            idx = self._coll_idx.get((ctx, rank), 0)
            self._coll_idx[(ctx, rank)] = idx + 1
            log = self._coll_log.setdefault(ctx, [])
            if idx >= len(log):
                log.append(record + (rank,))
                return
            first_name, first_root, first_sig, first_rank = log[idx]
        if (name, root, dtype_sig) != (first_name, first_root, first_sig):
            def fmt(n, r, s):
                parts = [n]
                if r is not None:
                    parts.append(f"root={r}")
                if s is not None:
                    parts.append(f"datatype={s[0]} x{s[1]}")
                return " ".join(parts)
            raise MPIException(
                ERR_OTHER,
                f"sanitizer: collective mismatch on ctx {ctx} at call "
                f"#{idx}: rank {rank} called {fmt(name, root, dtype_sig)} "
                f"but rank {first_rank} called "
                f"{fmt(first_name, first_root, first_sig)}")

    # -- Finalize audit --------------------------------------------------------
    def finalize_audit(self, rt) -> None:
        report: list[str] = []
        unexpected, posted = rt.mailbox.pending_counts()
        if unexpected or posted:
            detail = ", ".join(rt.mailbox.pending_summary())
            if unexpected:
                report.append(f"{unexpected} message(s) never received "
                              f"({detail})")
            if posted:
                report.append(f"{posted} posted receive(s) never matched "
                              f"({detail})")
        stale = [r for r in self._requests
                 if getattr(r, "san_rank", -1) == rt.world_rank
                 and not r.done and not r.cancelled
                 and (not r.persistent or r.active)]
        if stale:
            report.append(f"{len(stale)} request(s) never completed: "
                          + ", ".join(repr(r) for r in stale[:8]))
        table = getattr(rt, "_handle_table", None)
        if table is not None:
            from repro.jni.handles import _FIRST_DYNAMIC_HANDLE
            leaked = [h for h in table.datatypes._by_handle
                      if h >= _FIRST_DYNAMIC_HANDLE]
            if leaked:
                report.append(f"{len(leaked)} derived datatype(s) never "
                              f"freed (handles {sorted(leaked)[:8]})")
        if getattr(rt.bsend_pool, "_attached", False):
            report.append("bsend buffer still attached (Buffer_detach "
                          "never called)")
        self.finalize_reports[rt.world_rank] = report
        if report:
            lines = "".join(f"\n  - {item}" for item in report)
            text = (f"sanitizer: Finalize audit, rank {rt.world_rank}:"
                    f"{lines}")
            if self.strict:
                raise MPIException(ERR_OTHER, text)
            print(text, file=sys.stderr)


class _CollConsistencyProfiler(CommProfiler):
    """PMPI interposer feeding the collective-consistency check."""

    def __init__(self, owner: Sanitizer):
        self.owner = owner

    def intercept(self, comm, name, args, invoke):
        if name in _COLL_ARGS:
            from repro.runtime.engine import try_current_runtime
            rt = try_current_runtime()
            if rt is not None and rt.universe is self.owner.universe:
                self.owner.check_collective(rt, name, args)
        return invoke()

    def reset(self) -> None:
        with self.owner._coll_lock:
            self.owner._coll_log.clear()
            self.owner._coll_idx.clear()
