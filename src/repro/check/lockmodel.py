"""Static lock model: acquisition sites, hold sets, and a call graph.

The analyzers here are deliberately *instance-insensitive*: a lock is
identified by where its attribute is created (``Mailbox._lock``,
``_RendezvousState.lock``, ``profiler._attach_lock``), not by object
identity.  That is the right granularity for lock-*order* reasoning —
"some Mailbox lock is taken while some BsendPool lock is held" — and it
is what makes a cross-module graph tractable without running the code.

Recognized acquisition forms::

    with self._lock: ...                  # plain attribute
    with self._plock[peer]: ...           # lock collection (dict/grid)
    with self._peer_lock(src, dst): ...   # lock-returning helper
    with st.lock: ...                     # typed local (st = self._rndv[r])
    something.acquire()                   # explicit acquire

``threading.Condition(self._lock)`` aliases the condition attribute to
its underlying lock, so ``with self._arrival:`` and ``with self._lock:``
acquire the *same* node — and ``self._arrival.wait()`` while holding
only that node is the sanctioned condition-variable pattern, not a
blocking-under-lock defect.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

#: attribute calls that block the calling thread outright
BLOCKING_SOCKET_ATTRS = frozenset({
    "recv", "recv_into", "recvmsg", "recvmsg_into", "sendall", "sendmsg",
    "accept", "connect",
})

#: method names too generic to resolve by uniqueness alone — when the
#: receiver's type is unknown, resolving e.g. ``self.events.append()``
#: to the single in-repo class that happens to define ``append`` would
#: fabricate call edges (and with them, lock-order cycles)
GENERIC_METHOD_NAMES = frozenset({
    "append", "appendleft", "add", "pop", "popleft", "get", "put",
    "get_nowait", "put_nowait", "clear", "remove", "discard", "extend",
    "update", "copy", "insert", "index", "count", "sort", "items",
    "keys", "values", "setdefault", "close", "read", "write", "flush",
    "encode", "decode", "send", "recv", "start", "stop", "run", "join",
    "wait", "set", "acquire", "release", "notify", "notify_all",
})

#: threading primitives whose wait blocks (Event.wait, Request.wait, ...)
WAIT_ATTR = "wait"
JOIN_ATTR = "join"

LOCK_CTORS = {"Lock": "lock", "RLock": "rlock"}


@dataclass
class LockAttr:
    """One lock-ish attribute of a class (or module)."""

    name: str
    kind: str                       # lock | rlock | cond | event | lockmap
    alias: Optional[str] = None     # condition -> underlying lock attr


@dataclass
class ClassModel:
    name: str
    module: str
    bases: list[str]
    locks: dict[str, LockAttr] = field(default_factory=dict)
    #: ``self.x = ClassName(...)`` -> attribute type by simple name
    attr_types: dict[str, str] = field(default_factory=dict)
    #: ``self.x = {k: ClassName() ...}`` -> container element type
    attr_elem_types: dict[str, str] = field(default_factory=dict)
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)


@dataclass
class Acquisition:
    """One lock acquisition event inside a function."""

    node: str            # lock node id, e.g. "Mailbox._lock"
    line: int
    held: tuple          # lock node ids already held at this point
    kind: str            # with | acquire


@dataclass
class BlockSite:
    """One potentially blocking operation inside a function."""

    line: int
    held: tuple
    desc: str            # human-readable operation
    sanctioned: bool     # cond.wait on exactly the (single) held lock


@dataclass
class CallSite:
    line: int
    held: tuple
    callee: Optional[str]    # resolved function key, or None
    desc: str


@dataclass
class FuncModel:
    key: str                 # "module::Class.meth" or "module::func"
    module: str
    path: str
    cls: Optional[ClassModel]
    node: ast.AST
    acquisitions: list[Acquisition] = field(default_factory=list)
    blocks: list[BlockSite] = field(default_factory=list)
    calls: list[CallSite] = field(default_factory=list)


class CodeModel:
    """Whole-tree model: classes, functions, locks, and resolution."""

    def __init__(self):
        self.classes: dict[str, ClassModel] = {}
        self.functions: dict[str, FuncModel] = {}
        #: module-level locks: node id "module.attr"
        self.module_locks: dict[str, str] = {}   # bare name -> node id
        #: lock attr name -> class names defining it (for fallbacks)
        self.lock_attr_index: dict[str, list[str]] = {}
        #: module-level function name -> keys (for call resolution)
        self.func_name_index: dict[str, list[str]] = {}
        #: method name -> class names defining it
        self.method_index: dict[str, list[str]] = {}

    # -- discovery ---------------------------------------------------------
    def add_module(self, module: str, path: str, tree: ast.Module) -> None:
        for st in tree.body:
            if isinstance(st, ast.Assign) and len(st.targets) == 1 \
                    and isinstance(st.targets[0], ast.Name):
                kind = _lock_ctor_kind(st.value)
                if kind in ("lock", "rlock"):
                    name = st.targets[0].id
                    self.module_locks[name] = f"{module}.{name}"
            elif isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                key = f"{module}::{st.name}"
                self.functions[key] = FuncModel(key, module, path, None, st)
                self.func_name_index.setdefault(st.name, []).append(key)
            elif isinstance(st, ast.ClassDef):
                self._add_class(module, path, st)

    def _add_class(self, module: str, path: str, node: ast.ClassDef) -> None:
        bases = [b.id for b in node.bases if isinstance(b, ast.Name)]
        cm = ClassModel(node.name, module, bases)
        self.classes.setdefault(node.name, cm)
        for st in node.body:
            if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cm.methods[st.name] = st
                self.method_index.setdefault(st.name, []).append(node.name)
                key = f"{module}::{node.name}.{st.name}"
                self.functions[key] = FuncModel(key, module, path, cm, st)
                _scan_attr_defs(cm, st)

    # -- resolution helpers -------------------------------------------------
    def class_lock(self, cls_name: str, attr: str) -> Optional[str]:
        """Lock node id for ``<cls>.<attr>``, following condition aliases
        and base classes."""
        seen = set()
        stack = [cls_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            cm = self.classes.get(name)
            if cm is None:
                continue
            la = cm.locks.get(attr)
            if la is not None:
                target = la.alias or la.name
                suffix = "[]" if la.kind == "lockmap" else ""
                return f"{name}.{target}{suffix}"
            stack.extend(cm.bases)
        return None

    def lock_attr_fallback(self, attr: str) -> Optional[str]:
        """Node for an attr on an *untyped* receiver: unique across the
        model -> that class; ambiguous -> a wildcard node."""
        owners = self.lock_attr_index.get(attr)
        if not owners:
            return None
        if len(owners) == 1:
            return self.class_lock(owners[0], attr)
        return f"*.{attr}"

    def resolve_method(self, cls_name: str, meth: str) -> Optional[str]:
        """Function key of ``cls.meth`` following base classes."""
        seen = set()
        stack = [cls_name]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            cm = self.classes.get(name)
            if cm is None:
                continue
            if meth in cm.methods:
                return f"{cm.module}::{name}.{meth}"
            stack.extend(cm.bases)
        return None

    def finalize(self) -> None:
        """Build the secondary indexes once discovery is complete."""
        self.lock_attr_index.clear()
        for cm in self.classes.values():
            for attr in cm.locks:
                self.lock_attr_index.setdefault(attr, []).append(cm.name)

    # -- analysis ----------------------------------------------------------
    def analyze(self) -> None:
        self.finalize()
        for fm in self.functions.values():
            _FuncScanner(self, fm).run()


def _lock_ctor_kind(expr: ast.AST) -> Optional[str]:
    """'lock'/'rlock'/'cond'/'event' if expr constructs one, else None."""
    if not isinstance(expr, ast.Call):
        return None
    fn = expr.func
    name = None
    if isinstance(fn, ast.Attribute):
        name = fn.attr
    elif isinstance(fn, ast.Name):
        name = fn.id
    if name in LOCK_CTORS:
        return LOCK_CTORS[name]
    if name == "Condition":
        return "cond"
    if name == "Event":
        return "event"
    return None


def _ctor_class_name(expr: ast.AST) -> Optional[str]:
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
        return expr.func.id
    return None


def _scan_attr_defs(cm: ClassModel, fn: ast.FunctionDef) -> None:
    """Record ``self.x = ...`` lock/type definitions in one method."""
    for node in ast.walk(fn):
        if isinstance(node, (ast.Lambda, ast.FunctionDef,
                             ast.AsyncFunctionDef)) and node is not fn:
            continue
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target, value = node.targets[0], node.value
        # self._wlock[i][j] = threading.Lock()  ->  lock collection
        base = target
        depth = 0
        while isinstance(base, ast.Subscript):
            base = base.value
            depth += 1
        if not (isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"):
            continue
        attr = base.attr
        if depth:
            if _lock_ctor_kind(value) in ("lock", "rlock"):
                cm.locks.setdefault(attr, LockAttr(attr, "lockmap"))
            continue
        kind = _lock_ctor_kind(value)
        if kind is not None:
            alias = None
            if kind == "cond" and value.args:
                arg = value.args[0]
                if isinstance(arg, ast.Attribute) \
                        and isinstance(arg.value, ast.Name) \
                        and arg.value.id == "self":
                    alias = arg.attr
            cm.locks[attr] = LockAttr(attr, kind, alias)
            continue
        # containers of locks / typed objects:
        #   self._plock = {p: threading.Lock() for p in peers}
        #   self._rndv = {r: _RendezvousState() for r in ranks}
        elem = _container_elem(value)
        if elem is not None:
            if _lock_ctor_kind(elem) in ("lock", "rlock"):
                cm.locks[attr] = LockAttr(attr, "lockmap")
            else:
                cls = _ctor_class_name(elem)
                if cls is not None:
                    cm.attr_elem_types[attr] = cls
            continue
        cls = _ctor_class_name(value)
        if cls is not None:
            cm.attr_types[attr] = cls


def _container_elem(expr: ast.AST) -> Optional[ast.AST]:
    """Element expression of a dict/list literal or comprehension."""
    if isinstance(expr, ast.DictComp):
        return expr.value
    if isinstance(expr, ast.ListComp):
        return expr.elt
    if isinstance(expr, ast.Dict) and expr.values:
        return expr.values[0]
    if isinstance(expr, (ast.List, ast.Tuple)) and expr.elts:
        return expr.elts[0]
    return None


class _FuncScanner:
    """Walk one function body tracking the set of held locks."""

    def __init__(self, model: CodeModel, fm: FuncModel):
        self.model = model
        self.fm = fm
        self.held: list[str] = []
        #: local variable -> class simple name (flow-insensitive-ish:
        #: updated in statement order)
        self.var_types: dict[str, str] = {}
        #: local variable -> lock node (``lock = threading.Lock()``)
        self.local_locks: dict[str, str] = {}

    def run(self) -> None:
        body = getattr(self.fm.node, "body", [])
        self._scan_block(body)

    # -- statements --------------------------------------------------------
    def _scan_block(self, stmts: list[ast.stmt]) -> None:
        for st in stmts:
            self._scan_stmt(st)

    def _scan_stmt(self, st: ast.stmt) -> None:
        if isinstance(st, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
            return   # nested defs run later, not under these locks
        if isinstance(st, (ast.With, ast.AsyncWith)):
            acquired = []
            for item in st.items:
                self._scan_expr(item.context_expr)
                node = self._resolve_lock_expr(item.context_expr)
                if node is not None:
                    self.fm.acquisitions.append(Acquisition(
                        node, item.context_expr.lineno,
                        tuple(self.held), "with"))
                    self.held.append(node)
                    acquired.append(node)
            self._scan_block(st.body)
            for _ in acquired:
                self.held.pop()
            return
        if isinstance(st, ast.Assign):
            self._scan_expr(st.value)
            self._note_assignment(st)
        else:
            for value in ast.iter_child_nodes(st):
                if isinstance(value, ast.expr):
                    self._scan_expr(value)
        for name, field_val in ast.iter_fields(st):
            if not isinstance(field_val, list) or not field_val:
                continue
            if isinstance(field_val[0], ast.stmt):
                self._scan_block(field_val)
            elif isinstance(field_val[0], ast.excepthandler):
                for handler in field_val:
                    self._scan_block(handler.body)

    def _note_assignment(self, st: ast.Assign) -> None:
        if len(st.targets) != 1 or not isinstance(st.targets[0], ast.Name):
            return
        name = st.targets[0].id
        kind = _lock_ctor_kind(st.value)
        if kind in ("lock", "rlock"):
            self.local_locks[name] = f"{self.fm.key}.<{name}>"
            return
        typ = self._expr_type(st.value)
        if typ is not None:
            self.var_types[name] = typ

    # -- expressions -------------------------------------------------------
    def _scan_expr(self, expr: ast.expr) -> None:
        stack: list[ast.AST] = [expr]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Lambda):
                continue   # body runs later; not under these locks
            if isinstance(node, ast.Call):
                self._scan_call(node)
            stack.extend(ast.iter_child_nodes(node))

    def _scan_call(self, call: ast.Call) -> None:
        fn = call.func
        held = tuple(self.held)
        if isinstance(fn, ast.Attribute):
            attr = fn.attr
            if attr == "acquire":
                node = self._resolve_lock_expr(fn.value)
                if node is not None:
                    self.fm.acquisitions.append(Acquisition(
                        node, call.lineno, held, "acquire"))
                return
            if attr in BLOCKING_SOCKET_ATTRS:
                self.fm.blocks.append(BlockSite(
                    call.lineno, held, f"socket .{attr}()", False))
            elif attr == WAIT_ATTR:
                self._note_wait(call, fn, held)
            elif attr == JOIN_ATTR:
                self._note_join(call, fn, held)
            elif attr == "sleep" and isinstance(fn.value, ast.Name) \
                    and fn.value.id == "time":
                self.fm.blocks.append(BlockSite(
                    call.lineno, held, "time.sleep()", False))
        callee = self._resolve_callee(fn)
        if callee is not None:
            self.fm.calls.append(CallSite(
                call.lineno, held, callee, _expr_text(fn)))

    def _note_wait(self, call: ast.Call, fn: ast.Attribute,
                   held: tuple) -> None:
        node = self._resolve_lock_expr(fn.value)
        if node is not None:
            # condition-variable wait: sanctioned exactly when the
            # condition's own lock is the single lock held
            sanctioned = held == (node,)
            self.fm.blocks.append(BlockSite(
                call.lineno, held, f"condition wait on {node}", sanctioned))
            return
        self.fm.blocks.append(BlockSite(
            call.lineno, held, f"{_expr_text(fn.value)}.wait()", False))

    def _note_join(self, call: ast.Call, fn: ast.Attribute,
                   held: tuple) -> None:
        recv = fn.value
        if isinstance(recv, ast.Constant):
            return   # "sep".join(...)
        text = _expr_text(recv)
        typ = self._expr_type(recv)
        threadish = (typ == "Thread"
                     or any(h in text.lower()
                            for h in ("thread", "pump", "writer", "worker")))
        if isinstance(recv, ast.Attribute) and recv.attr == "path":
            return   # os.path.join
        if threadish:
            self.fm.blocks.append(BlockSite(
                call.lineno, held, f"{text}.join()", False))

    # -- type/lock resolution ----------------------------------------------
    def _expr_type(self, expr: ast.expr) -> Optional[str]:
        """Class simple name of an expression, where inferable."""
        cls = _ctor_class_name(expr)
        if cls is not None and cls in self.model.classes:
            return cls
        if cls is not None and cls == "Thread":
            return "Thread"
        if isinstance(expr, ast.Name):
            return self.var_types.get(expr.id)
        if isinstance(expr, ast.Attribute):
            base_t = self._receiver_type(expr.value)
            if base_t is not None:
                cm = self.model.classes.get(base_t)
                if cm is not None:
                    return cm.attr_types.get(expr.attr)
            return None
        if isinstance(expr, ast.Subscript):
            return self._elem_type_of(expr.value)
        if isinstance(expr, ast.Call) \
                and isinstance(expr.func, ast.Attribute) \
                and expr.func.attr == "get":
            return self._elem_type_of(expr.func.value)
        return None

    def _elem_type_of(self, container: ast.expr) -> Optional[str]:
        """Element type of ``self.attr[...]`` / ``self.attr.get(...)``."""
        if isinstance(container, ast.Attribute):
            base_t = self._receiver_type(container.value)
            if base_t is not None:
                cm = self.model.classes.get(base_t)
                if cm is not None:
                    return cm.attr_elem_types.get(container.attr)
        return None

    def _receiver_type(self, expr: ast.expr) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id == "self" and self.fm.cls is not None:
                return self.fm.cls.name
            return self.var_types.get(expr.id)
        return self._expr_type(expr)

    def _resolve_lock_expr(self, expr: ast.expr) -> Optional[str]:
        """Lock node id acquired by ``with <expr>:`` (or None)."""
        # unwrap subscripts: self._plock[p], self._wlock[i][j]
        base = expr
        while isinstance(base, ast.Subscript):
            base = base.value
        if isinstance(base, ast.Name):
            if base.id in self.local_locks:
                return self.local_locks[base.id]
            return self.model.module_locks.get(base.id) \
                if self.model.module_locks.get(base.id, "").startswith(
                    self.fm.module + ".") else None
        if isinstance(base, ast.Call):
            # with self._peer_lock(src, dst):
            fn = base.func
            if isinstance(fn, ast.Attribute):
                t = self._receiver_type(fn.value)
                if t is not None and "lock" in fn.attr.lower():
                    return f"{t}.{fn.attr}()"
            return None
        if not isinstance(base, ast.Attribute):
            return None
        recv, attr = base.value, base.attr
        # module attribute: profiler._attach_lock
        if isinstance(recv, ast.Name) and recv.id not in ("self",) \
                and recv.id not in self.var_types:
            for bare, node in self.model.module_locks.items():
                if bare == attr and node.rsplit(".", 2)[-2] == recv.id:
                    return node
        t = self._receiver_type(recv)
        if t is not None:
            node = self.model.class_lock(t, attr)
            if node is not None:
                return node
            return None
        return self.model.lock_attr_fallback(attr)

    def _resolve_callee(self, fn: ast.expr) -> Optional[str]:
        if isinstance(fn, ast.Name):
            key = f"{self.fm.module}::{fn.id}"
            if key in self.model.functions:
                return key
            keys = self.model.func_name_index.get(fn.id, [])
            return keys[0] if len(keys) == 1 else None
        if isinstance(fn, ast.Attribute):
            t = self._receiver_type(fn.value)
            if t is not None:
                return self.model.resolve_method(t, fn.attr)
            if fn.attr in GENERIC_METHOD_NAMES:
                return None
            owners = self.model.method_index.get(fn.attr, [])
            if len(owners) == 1:
                return self.model.resolve_method(owners[0], fn.attr)
        return None


def _expr_text(expr: ast.expr) -> str:
    try:
        return ast.unparse(expr)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return "<expr>"


# -- whole-graph reasoning ----------------------------------------------------

def may_acquire(model: CodeModel) -> dict[str, set[str]]:
    """Transitive closure: function key -> lock nodes it may acquire."""
    direct = {k: {a.node for a in fm.acquisitions}
              for k, fm in model.functions.items()}
    return _closure(model, direct)


def may_block(model: CodeModel) -> dict[str, set[str]]:
    """Function key -> descriptions of blocking ops it may perform.

    Sanctioned condition waits (cond-wait under its own, single held
    lock) are still *blocking from the caller's perspective* — the wait
    releases that one lock, not any lock the caller holds — so they
    propagate here; only the direct site is exempt from findings."""
    direct = {k: {b.desc for b in fm.blocks}
              for k, fm in model.functions.items()}
    return _closure(model, direct)


def _closure(model: CodeModel,
             facts: dict[str, set[str]]) -> dict[str, set[str]]:
    out = {k: set(v) for k, v in facts.items()}
    changed = True
    while changed:
        changed = False
        for k, fm in model.functions.items():
            for cs in fm.calls:
                if cs.callee and cs.callee in out:
                    extra = out[cs.callee] - out[k]
                    if extra:
                        out[k].update(extra)
                        changed = True
    return out
