"""``python -m repro.check.verify``: static cross-rank protocol verifier.

Runs the per-rank symbolic executor (:mod:`repro.check.symexec`) over an
SPMD entry point — the same ``path/to/file.py:func`` / ``module:func``
targets ``repro.mpirun`` launches — once per rank, then cross-matches the
extracted communication traces (:mod:`repro.check.protocol`) *before the
program ever runs*::

    python -m repro.check.verify examples/laplace2d.py:solve --nprocs 4
    python -m repro.check.verify examples/pi_reduce.py:compute_pi \
        --nprocs 2,4 --json report.json
    python -m repro.check.verify 'examples/quickstart.py:main@2' \
        examples/obs_smoke.py:body --nprocs 2,4

``--nprocs`` takes a comma-separated list of job sizes; every target is
verified at every size.  A ``@N`` suffix on a target pins it to one size
regardless (``quickstart.py:main@2`` is written for exactly two ranks).

Findings reuse the :mod:`repro.check.findings` machinery: ``file:line``
anchors, error/warning/info severities, ``# repro: allow(<rule>)``
suppressions on the offending line (or the line above), deterministic
ordering, ``--json`` reports, ``--baseline`` filtering and ``--strict``.
The rule catalog lives in :data:`repro.check.protocol.RULES`.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from pathlib import Path

from repro.check.findings import (ERROR, WARNING, Finding, apply_baseline,
                                  dump_json, is_suppressed, load_baseline,
                                  parse_suppressions, render_report,
                                  sort_findings)
from repro.check.protocol import RULES, check_traces
from repro.check.symexec import Limits, Program, run_program

TOOL = "repro.check.verify"


def _module_path(module: str) -> str:
    """Source file of ``module`` without executing it."""
    try:
        spec = importlib.util.find_spec(module)
    except (ImportError, ValueError) as exc:
        raise SystemExit(f"{TOOL}: cannot locate module {module!r}: {exc}")
    if spec is None or not spec.origin or spec.origin == "built-in":
        raise SystemExit(f"{TOOL}: module {module!r} has no source file")
    return spec.origin


def resolve_program(target: str) -> tuple[Program, str]:
    """Build a :class:`Program` from a mpirun-style target string."""
    from repro.executor.procrunner import target_spec
    try:
        spec = target_spec(target)
    except ValueError as exc:
        raise SystemExit(f"{TOOL}: {exc}")
    path = spec["file"] if "file" in spec else _module_path(spec["module"])
    try:
        rel = str(Path(path).resolve().relative_to(Path.cwd()))
    except ValueError:
        rel = path
    try:
        program = Program.from_file(path, spec["func"], display_path=rel)
    except (OSError, SyntaxError) as exc:
        raise SystemExit(f"{TOOL}: cannot load {target!r}: {exc}")
    return program, spec["func"]


def parse_targets(tokens: list[str]) -> list[tuple[str, int | None]]:
    """Split optional ``@N`` nprocs pins off each target token."""
    out: list[tuple[str, int | None]] = []
    for tok in tokens:
        base, sep, pin = tok.rpartition("@")
        if sep and pin.isdigit():
            out.append((base, int(pin)))
        else:
            out.append((tok, None))
    return out


def verify_target(target: str, nprocs_list: list[int],
                  eager_limit: int | None = None,
                  limits: Limits | None = None) -> list[Finding]:
    """Verify one target at every requested job size; deduped findings."""
    program, _func = resolve_program(target)
    findings: list[Finding] = []
    seen: set[tuple[str, str, int]] = set()
    for nprocs in nprocs_list:
        traces = run_program(program, nprocs, limits=limits)
        kwargs = {}
        if eager_limit is not None:
            kwargs["eager_limit"] = eager_limit
        for f in check_traces(traces, **kwargs):
            key = (f.rule, f.path, f.line)
            if key not in seen:
                seen.add(key)
                findings.append(f)
    return findings


def filter_suppressed(findings: list[Finding],
                      ) -> tuple[list[Finding], int]:
    """Apply ``# repro: allow(...)`` comments from the flagged files."""
    allows: dict[str, dict[int, set[str]]] = {}
    kept: list[Finding] = []
    suppressed = 0
    for f in findings:
        if f.path not in allows:
            try:
                text = Path(f.path).read_text(encoding="utf-8")
            except OSError:
                text = ""
            allows[f.path] = parse_suppressions(text)
        if is_suppressed(f, allows[f.path]):
            suppressed += 1
        else:
            kept.append(f)
    return kept, suppressed


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(
        prog=f"python -m {TOOL}",
        description="statically verify an SPMD program's communication "
                    "protocol across ranks before running it")
    ap.add_argument("targets", nargs="+",
                    help="module:func or path/to/file.py:func (the same "
                         "targets repro.mpirun launches); append @N to "
                         "pin one target to a single job size")
    ap.add_argument("--nprocs", default="2,4", metavar="N[,N...]",
                    help="comma-separated job sizes to verify at "
                         "(default: 2,4)")
    ap.add_argument("--rules", default=None,
                    help=f"comma-separated rules to report (default: all "
                         f"of {', '.join(sorted(RULES))})")
    ap.add_argument("--eager-limit", type=int, default=None,
                    metavar="BYTES",
                    help="eager/rendezvous threshold for the deadlock "
                         "analysis (default: the transport's limit)")
    ap.add_argument("--json", metavar="PATH", default=None,
                    help="also write the findings as JSON")
    ap.add_argument("--baseline", metavar="PATH", default=None,
                    help="JSON report of known findings to filter out")
    ap.add_argument("--strict", action="store_true",
                    help="treat warnings as failures too")
    args = ap.parse_args(argv)

    try:
        nprocs_list = sorted({int(tok) for tok in args.nprocs.split(",")
                              if tok.strip()})
    except ValueError:
        ap.error(f"--nprocs must be a comma-separated list of integers, "
                 f"got {args.nprocs!r}")
    if not nprocs_list or min(nprocs_list) < 1:
        ap.error("--nprocs needs at least one positive job size")

    rules: tuple[str, ...] | None = None
    if args.rules is not None:
        rules = tuple(r.strip() for r in args.rules.split(",")
                      if r.strip())
        unknown = set(rules) - set(RULES)
        if unknown:
            ap.error(f"unknown rule(s): {', '.join(sorted(unknown))}")

    eager = args.eager_limit
    if eager is None:
        from repro.transport.wire import eager_limit
        eager = eager_limit()

    findings: list[Finding] = []
    for target, pin in parse_targets(args.targets):
        sizes = [pin] if pin is not None else nprocs_list
        findings.extend(verify_target(target, sizes, eager_limit=eager))
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    findings, suppressed = filter_suppressed(findings)
    baselined = 0
    if args.baseline:
        findings, baselined = apply_baseline(
            findings, load_baseline(args.baseline, tool=TOOL))
    findings = sort_findings(findings)

    print(render_report(findings, len(args.targets), tool=TOOL))
    if suppressed:
        print(f"{TOOL}: {suppressed} finding(s) suppressed by "
              f"'# repro: allow(...)' comments")
    if baselined:
        print(f"{TOOL}: {baselined} known finding(s) filtered by "
              f"the baseline")
    if args.json:
        Path(args.json).write_text(
            dump_json(findings, len(args.targets), suppressed, tool=TOOL),
            encoding="utf-8")
    errors = sum(1 for f in findings if f.severity == ERROR)
    warnings = sum(1 for f in findings if f.severity == WARNING)
    if errors or (args.strict and warnings):
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
