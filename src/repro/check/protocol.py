"""Cross-rank matching of symbolic per-rank traces.

Takes the :class:`~repro.check.symexec.RankTrace` list produced by the
per-rank symbolic executor and proves (or refutes) that the program's
communication protocol matches before it ever runs:

* when every trace is **exact** — no data-dependent control flow, no
  wildcards, no unresolved endpoints — the matcher *simulates* the MPI
  progress rules (eager sends complete immediately, rendezvous and
  synchronous sends block for the matching receive, collectives complete
  per their root semantics) and classifies any stuck state: an
  ``unmatched-send``/``unmatched-recv`` whose counterpart is statically
  absent, a ``send-deadlock`` of head-to-head rendezvous sends, or a
  general ``deadlock`` cycle;
* otherwise it degrades to **may-analysis**: count-insensitive orphan
  detection where all participants are still exact, and only per-rank
  local rules (``buffer-race``, ``lost-request``, ``wildcard-recv``,
  ``unfreed-datatype``) where they are not.  Lost precision can hide a
  bug; it never invents one.

Rule catalog lives in :data:`RULES`; every finding reuses the PR 7
:mod:`repro.check.findings` severity / ``file:line`` / suppression
machinery.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.runtime.consts import ANY_SOURCE, ANY_TAG, PROC_NULL
from repro.check.findings import ERROR, INFO, WARNING, Finding
from repro.check.symexec import (
    CollEv, Ev, ProbeEv, RankTrace, RecvEv, SendEv, WaitEv, WriteEv,
)

__all__ = ["RULES", "check_traces"]

#: rule name -> (severity shown in docs, one-line description)
RULES: dict[str, tuple[str, str]] = {
    "unmatched-send": (ERROR, "a send whose matching receive is "
                              "statically absent (or the destination rank "
                              "does not exist)"),
    "unmatched-recv": (ERROR, "a receive whose matching send is "
                              "statically absent"),
    "send-deadlock": (ERROR, "head-to-head blocking sends above the eager "
                             "limit: every stuck rank is in a rendezvous "
                             "send, none can post the receive"),
    "deadlock": (ERROR, "the simulated schedule wedges: a cycle of ranks "
                        "each waiting on another"),
    "coll-mismatch": (ERROR, "ranks disagree on the collective sequence "
                             "over a communicator (order, root, datatype "
                             "signature or reduction op)"),
    "type-mismatch": (WARNING, "a matched send/receive pair disagrees on "
                               "datatype base or the send outsizes the "
                               "receive buffer"),
    "buffer-race": (ERROR, "a buffer is written between an Isend/Irecv "
                           "and the Wait/Test that completes it"),
    "lost-request": (WARNING, "a nonblocking request is never completed "
                              "by any Wait/Test"),
    "wildcard-recv": (INFO, "an ANY_SOURCE receive makes message order "
                            "nondeterministic; exact matching is skipped"),
    "unfreed-datatype": (INFO, "a committed derived datatype is never "
                               "freed"),
}

_WAIT_KINDS = {"wait", "waitall", "waitany", "waitsome"}
_TEST_KINDS = {"test", "testall", "testany", "testsome"}

#: collective completion classes (see §5.2 of the spec, simplified)
_ALL_RANKS = {"Barrier", "Allreduce", "Allgather", "Allgatherv",
              "Alltoall", "Alltoallv", "Reduce_scatter", "Scan", "Dup",
              "Create_cart", "Split", "Create", "Create_graph",
              "Create_intercomm", "Free", "Sub"}
_ROOT_WAITS_ALL = {"Gather", "Gatherv", "Reduce"}
_ALL_WAIT_ROOT = {"Bcast", "Scatter", "Scatterv"}


def _conc(v: Any) -> Optional[int]:
    return v if isinstance(v, int) else None


def _dedup(findings: list[Finding]) -> list[Finding]:
    seen: set[tuple] = set()
    out = []
    for f in findings:
        key = (f.rule, f.path, f.line)
        if key in seen:
            continue
        seen.add(key)
        out.append(f)
    return out


def check_traces(traces: list[RankTrace],
                 eager_limit: int = 1024 * 1024) -> list[Finding]:
    """Run every cross-rank and per-rank rule; return deduped findings."""
    findings: list[Finding] = []
    for t in traces:
        findings.extend(_local_rules(t))
    findings.extend(_collective_rules(traces))
    if _deterministic(traces):
        findings.extend(_Simulator(traces, eager_limit).run())
    else:
        findings.extend(_may_match(traces))
    return _dedup(findings)


# ---------------------------------------------------------------------------
# per-rank local rules
# ---------------------------------------------------------------------------

def _local_rules(t: RankTrace) -> list[Finding]:
    out: list[Finding] = []
    for ev in t.events:
        if isinstance(ev, RecvEv) and _conc(ev.src) == ANY_SOURCE:
            tagtxt = "ANY_TAG" if _conc(ev.tag) == ANY_TAG else "a tag"
            out.append(Finding(
                "wildcard-recv", INFO, ev.path, ev.line,
                f"rank {t.rank} receives from ANY_SOURCE with {tagtxt}: "
                f"message order is nondeterministic and exact matching "
                f"is disabled for this context"))
    for req in t.requests:
        ev = req.event
        if not req.observed and not ev.conditional and t.exact:
            what = _ev_name(ev)
            out.append(Finding(
                "lost-request", WARNING, ev.path, ev.line,
                f"rank {t.rank}: request from {what} is never completed "
                f"by any Wait/Test; its completion (and buffer "
                f"ownership) is undefined"))
    for dt in t.datatypes:
        if dt.derived and dt.committed and not dt.freed \
                and dt.site is not None:
            path, line = dt.site
            out.append(Finding(
                "unfreed-datatype", INFO, path, line,
                f"rank {t.rank}: derived datatype {dt.name} is committed "
                f"but never freed"))
    out.extend(_race_rules(t))
    return out


def _ev_name(ev: Ev) -> str:
    if isinstance(ev, SendEv):
        return f"Isend at {ev.location}"
    if isinstance(ev, RecvEv):
        return f"Irecv at {ev.location}"
    if isinstance(ev, CollEv):
        return f"I{ev.name.lower()} at {ev.location}"
    return f"operation at {ev.location}"


def _spans_overlap(a: Optional[tuple], b: Optional[tuple]) -> Optional[bool]:
    """True/False when both spans are known; None when either is not."""
    if a is None or b is None:
        return None
    return a[0] < b[1] and b[0] < a[1]


def _race_rules(t: RankTrace) -> list[Finding]:
    """Writes into a buffer while a request that pinned it is in flight
    (the static twin of the PR 7 send-checksum sanitizer check)."""
    out: list[Finding] = []
    # completion index per rid: first Wait/Test event naming it
    completed_at: dict[int, int] = {}
    for ev in t.events:
        if isinstance(ev, WaitEv) and (ev.kind in _WAIT_KINDS
                                       or ev.kind in _TEST_KINDS):
            for rid in ev.rids:
                completed_at.setdefault(rid, ev.idx)
    intervals = []          # (start idx, end idx, bid, span, req ev, mode)
    for req in t.requests:
        ev = req.event
        end = completed_at.get(req.rid, len(t.events))
        if isinstance(ev, (SendEv, RecvEv)):
            if ev.bid is not None:
                mode = "send" if isinstance(ev, SendEv) else "recv"
                intervals.append((ev.idx, end, ev.bid, ev.span, ev, mode))
        elif isinstance(ev, CollEv):
            for bid, span, _m in ev.bufs:
                intervals.append((ev.idx, end, bid, span, ev, ev.name))
    if not intervals:
        return out
    for ev in t.events:
        if not isinstance(ev, WriteEv):
            continue
        for start, end, bid, span, rev, mode in intervals:
            if ev.bid != bid or not (start < ev.idx < end):
                continue
            overlap = _spans_overlap(ev.span, span)
            if overlap is False:
                continue
            certain = overlap is True and not ev.conditional \
                and not rev.conditional
            sev = ERROR if certain else WARNING
            qual = "" if overlap is True else "may "
            out.append(Finding(
                "buffer-race", sev, ev.path, ev.line,
                f"rank {t.rank}: buffer written here {qual}overlaps the "
                f"in-flight {_ev_name(rev)} ({mode}); mutation before "
                f"the completing Wait/Test corrupts the transfer"))
    return out


# ---------------------------------------------------------------------------
# collective sequence agreement
# ---------------------------------------------------------------------------

def _coll_key(ev: CollEv) -> tuple:
    return (ev.name, ev.root if isinstance(ev.root, int) else None,
            ev.sig, ev.op, ev.blocking)


def _coll_desc(ev: CollEv) -> str:
    bits = [ev.name if ev.blocking else f"I{ev.name.lower()}"]
    if isinstance(ev.root, int):
        bits.append(f"root={ev.root}")
    if ev.op:
        bits.append(f"op={ev.op}")
    if ev.sig and ev.sig != ("v",):
        bits.append(f"sig={ev.sig}")
    return " ".join(bits)


def _collective_rules(traces: list[RankTrace]) -> list[Finding]:
    """Rank-divergent collective sequences per context (static twin of
    the runtime CommProfiler consistency check)."""
    out: list[Finding] = []
    by_ctx: dict[str, dict[int, list[CollEv]]] = {}
    skip: set[str] = set()
    for t in traces:
        skip |= t.inexact_ctxs
        for ev in t.events:
            if isinstance(ev, CollEv):
                if ev.conditional or not t.exact:
                    skip.add(ev.ctx)
                by_ctx.setdefault(ev.ctx, {}).setdefault(
                    t.rank, []).append(ev)
    for ctx, per_rank in sorted(by_ctx.items()):
        if ctx in skip or len(per_rank) < 2:
            continue
        ranks = sorted(per_rank)
        ref_rank = ranks[0]
        ref = per_rank[ref_rank]
        for rank in ranks[1:]:
            seq = per_rank[rank]
            for k in range(max(len(ref), len(seq))):
                if k >= len(ref) or k >= len(seq):
                    longer, lr = (ref, ref_rank) if len(ref) > len(seq) \
                        else (seq, rank)
                    shorter_rank = rank if lr == ref_rank else ref_rank
                    ev = longer[k]
                    out.append(Finding(
                        "coll-mismatch", ERROR, ev.path, ev.line,
                        f"collective #{k + 1} on {ctx}: rank {lr} calls "
                        f"{_coll_desc(ev)} but rank {shorter_rank} has "
                        f"already finished its collective sequence "
                        f"({len(longer)} vs "
                        f"{min(len(ref), len(seq))} calls)"))
                    break
                a, b = ref[k], seq[k]
                if _coll_key(a) != _coll_key(b):
                    out.append(Finding(
                        "coll-mismatch", ERROR, b.path, b.line,
                        f"collective #{k + 1} on {ctx} diverges across "
                        f"ranks: rank {rank} calls {_coll_desc(b)} but "
                        f"rank {ref_rank} calls {_coll_desc(a)} at "
                        f"{a.location}"))
                    break
    return out


# ---------------------------------------------------------------------------
# determinism test + may matching fallback
# ---------------------------------------------------------------------------

def _deterministic(traces: list[RankTrace]) -> bool:
    for t in traces:
        if not t.exact or t.inexact_ctxs:
            return False
        for ev in t.events:
            if isinstance(ev, ProbeEv):
                return False
            if isinstance(ev, (SendEv, RecvEv, CollEv, WaitEv)) \
                    and ev.conditional:
                return False
            if isinstance(ev, SendEv):
                if _conc(ev.dst) is None or _conc(ev.tag) is None:
                    return False
            elif isinstance(ev, RecvEv):
                src, tag = _conc(ev.src), _conc(ev.tag)
                if src is None or tag is None:
                    return False
                if src == ANY_SOURCE or tag == ANY_TAG:
                    return False
            elif isinstance(ev, CollEv):
                if ev.root is not None and _conc(ev.root) is None:
                    return False
    return True


def _tag_compatible(stag: Any, rtag: Any) -> bool:
    st, rt = _conc(stag), _conc(rtag)
    if rt == ANY_TAG or st is None or rt is None:
        return True
    return st == rt


def _may_match(traces: list[RankTrace]) -> list[Finding]:
    """Count-insensitive orphan detection for nondeterministic programs.

    Only runs over contexts where every participating trace is exact —
    an inexact trace may simply have stopped early, so the absence of a
    counterpart there proves nothing.
    """
    out: list[Finding] = []
    nprocs = len(traces)
    by_ctx: dict[str, dict[int, list[Ev]]] = {}
    skip: set[str] = set()
    for t in traces:
        skip |= t.inexact_ctxs
        for ev in t.events:
            if isinstance(ev, (SendEv, RecvEv)):
                if not t.exact:
                    skip.add(ev.ctx)
                by_ctx.setdefault(ev.ctx, {}).setdefault(
                    t.rank, []).append(ev)
    for t in traces:
        if not t.exact:
            # a truncated trace hides counterparts in *every* context
            # it touches and, transitively, for peers that talk to it;
            # world-wide we cannot localize that, so skip all contexts
            # this rank participates in
            for ev in t.events:
                if isinstance(ev, (SendEv, RecvEv, CollEv)):
                    skip.add(ev.ctx)
    for ctx, per_rank in sorted(by_ctx.items()):
        if ctx in skip:
            continue
        sends: list[tuple[int, SendEv]] = []
        recvs: list[tuple[int, RecvEv]] = []
        for rank, evs in per_rank.items():
            for ev in evs:
                if isinstance(ev, SendEv):
                    sends.append((rank, ev))
                else:
                    recvs.append((rank, ev))
        for rank, ev in sends:
            if ev.conditional:
                continue
            dst = _conc(ev.dst)
            if dst is None or dst == PROC_NULL:
                continue
            if not 0 <= dst < nprocs:
                out.append(Finding(
                    "unmatched-send", ERROR, ev.path, ev.line,
                    f"rank {rank} sends to rank {dst}, which does not "
                    f"exist in a {nprocs}-process job"))
                continue
            ok = any(r == dst
                     and (_conc(rv.src) in (rank, ANY_SOURCE, None))
                     and _tag_compatible(ev.tag, rv.tag)
                     for r, rv in recvs)
            if not ok:
                out.append(Finding(
                    "unmatched-send", ERROR, ev.path, ev.line,
                    f"rank {rank} sends to rank {dst} "
                    f"(tag {ev.tag}) on {ctx} but rank {dst} never "
                    f"posts a matching receive"))
        for rank, ev in recvs:
            if ev.conditional:
                continue
            src = _conc(ev.src)
            if src is None or src in (ANY_SOURCE, PROC_NULL):
                continue
            if not 0 <= src < nprocs:
                out.append(Finding(
                    "unmatched-recv", ERROR, ev.path, ev.line,
                    f"rank {rank} receives from rank {src}, which does "
                    f"not exist in a {nprocs}-process job"))
                continue
            ok = any(r == src
                     and _conc(sv.dst) in (rank, None)
                     and _tag_compatible(sv.tag, ev.tag)
                     for r, sv in sends)
            if not ok:
                out.append(Finding(
                    "unmatched-recv", ERROR, ev.path, ev.line,
                    f"rank {rank} waits for a message from rank {src} "
                    f"(tag {ev.tag}) on {ctx} but rank {src} never "
                    f"sends one"))
    return out


# ---------------------------------------------------------------------------
# exact schedule simulation
# ---------------------------------------------------------------------------

class _Simulator:
    """Deterministic replay of the MPI progress rules over exact traces."""

    def __init__(self, traces: list[RankTrace], eager_limit: int):
        self.traces = traces
        self.nprocs = len(traces)
        self.eager = eager_limit
        #: completed request ids
        self.rid_done: set[int] = set()
        # schedulable program per rank (comm events only)
        self.prog: list[list[Ev]] = []
        for t in traces:
            evs = []
            for ev in t.events:
                if isinstance(ev, (SendEv, RecvEv, CollEv)):
                    if self._proc_null(ev):
                        self._insta_complete(ev)
                        continue
                    evs.append(ev)
                elif isinstance(ev, WaitEv):
                    evs.append(ev)
            self.prog.append(evs)
        self.pc = [0] * self.nprocs
        self.done: list[set[int]] = [set() for _ in range(self.nprocs)]
        #: messages sent and not yet received: (ctx, src, dst) -> FIFO
        self.chan: dict[tuple, list[SendEv]] = {}
        #: posted nonblocking recvs not yet matched: (ctx, dst) -> FIFO
        self.posted: dict[tuple, list[tuple[int, RecvEv]]] = {}
        #: outstanding rendezvous isends: rid -> (rank, ev)
        self.pending_isend: dict[int, tuple[int, SendEv]] = {}
        #: nonblocking collective requests: rid -> (ctx, instance, ev)
        self.pending_icoll: dict[int, tuple[str, int, CollEv]] = {}
        #: per (ctx, instance) set of ranks that issued it
        self.issued: dict[tuple, set[int]] = {}
        #: per (rank, ctx) count of collectives entered
        self.inst: dict[tuple, int] = {}
        #: (rank, event idx) pairs already registered with a collective
        self.joined: set[tuple] = set()
        self.participants = self._participants()
        self.findings: list[Finding] = []
        self.matched_pairs: list[tuple[SendEv, RecvEv, int, int]] = []

    # -- setup helpers ------------------------------------------------------
    def _proc_null(self, ev: Ev) -> bool:
        if isinstance(ev, SendEv):
            return _conc(ev.dst) == PROC_NULL
        if isinstance(ev, RecvEv):
            return _conc(ev.src) == PROC_NULL
        return False

    def _insta_complete(self, ev: Ev) -> None:
        rid = getattr(ev, "rid", None)
        if rid is not None:
            self.rid_done.add(rid)

    def _participants(self) -> dict[str, set[int]]:
        parts: dict[str, set[int]] = {"world": set(range(self.nprocs))}
        for t in self.traces:
            for ev in t.events:
                if isinstance(ev, (SendEv, RecvEv, CollEv)):
                    parts.setdefault(ev.ctx, set()).add(t.rank)
        return parts

    def _is_rendezvous(self, ev: SendEv) -> bool:
        if ev.mode == "ssend":
            return True
        if ev.mode in ("bsend", "rsend"):
            return False
        return ev.nbytes is not None and ev.nbytes >= self.eager

    # -- main loop ----------------------------------------------------------
    def run(self) -> list[Finding]:
        progress = True
        while progress:
            progress = False
            for rank in range(self.nprocs):
                while self._step(rank):
                    progress = True
        self._classify_stuck()
        self._leftovers()
        self._type_mismatches()
        return self.findings

    def _step(self, rank: int) -> bool:
        prog = self.prog[rank]
        pc = self.pc[rank]
        if pc >= len(prog):
            return False
        ev = prog[pc]
        if ev.idx in self.done[rank]:
            self.pc[rank] += 1
            return True
        if isinstance(ev, SendEv):
            return self._step_send(rank, ev)
        if isinstance(ev, RecvEv):
            return self._step_recv(rank, ev)
        if isinstance(ev, CollEv):
            return self._step_coll(rank, ev)
        if isinstance(ev, WaitEv):
            return self._step_wait(rank, ev)
        self.pc[rank] += 1
        return True

    def _advance(self, rank: int, ev: Ev) -> bool:
        self.done[rank].add(ev.idx)
        self.pc[rank] += 1
        return True

    # -- point-to-point steps ----------------------------------------------
    def _deposit(self, rank: int, ev: SendEv) -> None:
        """An eager (or matched rendezvous) message enters the channel,
        unless a posted nonblocking recv is already waiting for it."""
        dst = _conc(ev.dst)
        entry = self.posted.get((ev.ctx, dst))
        if entry:
            for i, (rrank, rev) in enumerate(entry):
                if _conc(rev.src) == rank and _tag_compatible(ev.tag,
                                                              rev.tag):
                    entry.pop(i)
                    self.rid_done.add(rev.rid)
                    self.matched_pairs.append((ev, rev, rank, rrank))
                    return
        self.chan.setdefault((ev.ctx, rank, dst), []).append(ev)

    def _step_send(self, rank: int, ev: SendEv) -> bool:
        if not ev.blocking:
            if self._is_rendezvous(ev):
                self.pending_isend[ev.rid] = (rank, ev)
                self._try_match_isend(ev.rid)
            else:
                self.rid_done.add(ev.rid)
                self._deposit(rank, ev)
            return self._advance(rank, ev)
        if not self._is_rendezvous(ev):
            self._deposit(rank, ev)
            return self._advance(rank, ev)
        # blocking rendezvous: needs a receive to be reachable now
        if self._match_rendezvous(rank, ev):
            return self._advance(rank, ev)
        return False

    def _match_rendezvous(self, rank: int, ev: SendEv) -> bool:
        """Find a receive that can complete this rendezvous send."""
        dst = _conc(ev.dst)
        entry = self.posted.get((ev.ctx, dst))
        if entry:
            for i, (rrank, rev) in enumerate(entry):
                if _conc(rev.src) == rank and _tag_compatible(ev.tag,
                                                              rev.tag):
                    entry.pop(i)
                    self.rid_done.add(rev.rid)
                    self.matched_pairs.append((ev, rev, rank, rrank))
                    return True
        # a peer blocked in a matching blocking Recv (or the recv half
        # of its current Sendrecv)
        rev = self._blocked_recv_offer(dst, rank, ev)
        if rev is not None:
            self.done[dst].add(rev.idx)
            self.matched_pairs.append((ev, rev, rank, dst))
            return True
        return False

    def _try_match_isend(self, rid: int) -> None:
        rank, ev = self.pending_isend[rid]
        if self._match_rendezvous(rank, ev):
            self.rid_done.add(rid)
            del self.pending_isend[rid]

    def _blocked_recv_offer(self, rank: int, src: int,
                            sev: SendEv) -> Optional[RecvEv]:
        """A blocking recv `rank` is currently stuck at (or the recv
        half of a Sendrecv it is stuck at) matching ``sev``."""
        prog = self.prog[rank]
        pc = self.pc[rank]
        if pc >= len(prog):
            return None
        cand = prog[pc]
        offers = []
        if isinstance(cand, RecvEv) and cand.blocking \
                and cand.idx not in self.done[rank]:
            offers.append(cand)
        if isinstance(cand, SendEv) and cand.pair is not None \
                and pc + 1 < len(prog):
            nxt = prog[pc + 1]
            if isinstance(nxt, RecvEv) and nxt.pair == cand.pair \
                    and nxt.idx not in self.done[rank]:
                offers.append(nxt)
        for rev in offers:
            if _conc(rev.src) == src and rev.ctx == sev.ctx \
                    and _tag_compatible(sev.tag, rev.tag):
                # respect channel FIFO: an older undelivered message on
                # this channel must match first
                if self.chan.get((sev.ctx, src, rank)):
                    continue
                return rev
        return None

    def _step_recv(self, rank: int, ev: RecvEv) -> bool:
        src = _conc(ev.src)
        if not ev.blocking:
            self.posted.setdefault((ev.ctx, rank), []).append((rank, ev))
            self._drain_posted(ev.ctx, rank)
            for rid in list(self.pending_isend):
                self._try_match_isend(rid)
            return self._advance(rank, ev)
        # blocking: deliverable messages first — eager messages already
        # in the channel and in-flight rendezvous Isends, merged by
        # posting order so the per-(src, dst) FIFO holds — then a peer
        # stuck in a matching blocking rendezvous send
        fifo = self.chan.get((ev.ctx, src, rank), [])
        chan_hit: Optional[tuple[int, int]] = None       # (idx, pos)
        for i, sev in enumerate(fifo):
            if _tag_compatible(sev.tag, ev.tag):
                chan_hit = (sev.idx, i)
                break                    # fifo is in posting order
        isend_hit: Optional[tuple[int, int]] = None      # (idx, rid)
        for rid, (srank, sev) in self.pending_isend.items():
            if srank == src and sev.ctx == ev.ctx \
                    and _conc(sev.dst) == rank \
                    and _tag_compatible(sev.tag, ev.tag) \
                    and (isend_hit is None or sev.idx < isend_hit[0]):
                isend_hit = (sev.idx, rid)
        if chan_hit is not None and (isend_hit is None
                                     or chan_hit[0] < isend_hit[0]):
            sev = fifo.pop(chan_hit[1])
            self.matched_pairs.append((sev, ev, src, rank))
            return self._advance(rank, ev)
        if isend_hit is not None:
            rid = isend_hit[1]
            _srank, sev = self.pending_isend.pop(rid)
            self.rid_done.add(rid)
            self.matched_pairs.append((sev, ev, src, rank))
            return self._advance(rank, ev)
        sev = self._blocked_rendezvous_offer(src, rank, ev)
        if sev is not None:
            self.done[src].add(sev.idx)
            self.matched_pairs.append((sev, ev, src, rank))
            return self._advance(rank, ev)
        return False

    def _blocked_rendezvous_offer(self, rank: int, dst: int,
                                  rev: RecvEv) -> Optional[SendEv]:
        """A blocking rendezvous send `rank` is stuck at (or the send
        half of its current Sendrecv) that matches ``rev``."""
        prog = self.prog[rank]
        pc = self.pc[rank]
        if pc >= len(prog):
            return None
        cand = prog[pc]
        if isinstance(cand, SendEv) and cand.blocking \
                and cand.idx not in self.done[rank] \
                and self._is_rendezvous(cand) \
                and _conc(cand.dst) == dst and cand.ctx == rev.ctx \
                and _tag_compatible(cand.tag, rev.tag):
            return cand
        return None

    def _drain_posted(self, ctx: str, rank: int) -> None:
        """Match queued messages against newly-posted receives."""
        entry = self.posted.get((ctx, rank), [])
        i = 0
        while i < len(entry):
            rrank, rev = entry[i]
            src = _conc(rev.src)
            fifo = self.chan.get((ctx, src, rank), [])
            hit = None
            for j, sev in enumerate(fifo):
                if _tag_compatible(sev.tag, rev.tag):
                    hit = j
                    break
            if hit is not None:
                sev = fifo.pop(hit)
                entry.pop(i)
                self.rid_done.add(rev.rid)
                self.matched_pairs.append((sev, rev, src, rank))
                continue
            i += 1

    # -- collectives --------------------------------------------------------
    def _step_coll(self, rank: int, ev: CollEv) -> bool:
        key = (rank, ev.idx)
        if key not in self.joined:
            k = self.inst.get((rank, ev.ctx), 0)
            self.inst[(rank, ev.ctx)] = k + 1
            self.issued.setdefault((ev.ctx, k), set()).add(rank)
            self.joined.add(key)
            if not ev.blocking:
                self.pending_icoll[ev.rid] = (ev.ctx, k, ev)
                return self._advance(rank, ev)
        else:
            k = self.inst[(rank, ev.ctx)] - 1
        if self._coll_complete(ev, k, rank):
            return self._advance(rank, ev)
        return False

    def _coll_complete(self, ev: CollEv, k: int, rank: int) -> bool:
        arrived = self.issued.get((ev.ctx, k), set())
        parts = self.participants.get(ev.ctx, set())
        if ev.name in _ROOT_WAITS_ALL:
            if rank != _conc(ev.root):
                return True
            return parts <= arrived
        if ev.name in _ALL_WAIT_ROOT:
            if rank == _conc(ev.root):
                return True
            return _conc(ev.root) in arrived
        # default: everyone waits for everyone
        return parts <= arrived

    def _icoll_done(self, rid: int) -> bool:
        ctx, k, ev = self.pending_icoll[rid]
        arrived = self.issued.get((ctx, k), set())
        parts = self.participants.get(ctx, set())
        if ev.name in _ALL_WAIT_ROOT and _conc(ev.root) is not None:
            return _conc(ev.root) in arrived
        return parts <= arrived

    # -- waits --------------------------------------------------------------
    def _rid_complete(self, rid: int) -> bool:
        if rid in self.rid_done:
            return True
        if rid in self.pending_icoll and self._icoll_done(rid):
            self.rid_done.add(rid)
            del self.pending_icoll[rid]
            return True
        return False

    def _step_wait(self, rank: int, ev: WaitEv) -> bool:
        if ev.kind in _TEST_KINDS:
            return self._advance(rank, ev)
        states = [self._rid_complete(r) for r in ev.rids]
        if ev.kind in ("waitany", "waitsome"):
            ok = any(states) or not states
        else:
            ok = all(states)
        if ok:
            return self._advance(rank, ev)
        return False

    # -- post-mortem --------------------------------------------------------
    def _counterpart_exists(self, rank: int, ev: Ev) -> bool:
        """Is there *any* event in the whole program that could match?"""
        if isinstance(ev, SendEv):
            dst = _conc(ev.dst)
            if dst is None or not 0 <= dst < self.nprocs:
                return False
            return any(isinstance(o, RecvEv) and o.ctx == ev.ctx
                       and _conc(o.src) == rank
                       and _tag_compatible(ev.tag, o.tag)
                       for o in self.traces[dst].events)
        if isinstance(ev, RecvEv):
            src = _conc(ev.src)
            if src is None or not 0 <= src < self.nprocs:
                return False
            return any(isinstance(o, SendEv) and o.ctx == ev.ctx
                       and _conc(o.dst) == rank
                       and _tag_compatible(o.tag, ev.tag)
                       for o in self.traces[src].events)
        return True

    def _blocking_reason(self, rank: int) -> Optional[tuple[str, Ev]]:
        prog = self.prog[rank]
        pc = self.pc[rank]
        if pc >= len(prog):
            return None
        ev = prog[pc]
        if isinstance(ev, WaitEv):
            # attribute the stall to the first incomplete request
            for rid in ev.rids:
                if self._rid_complete(rid):
                    continue
                for t in self.traces:
                    if t.rank != rank:
                        continue
                    for req in t.requests:
                        if req.rid == rid:
                            return ("wait", req.event)
                return ("wait", ev)
            return ("wait", ev)
        if isinstance(ev, SendEv):
            return ("send", ev)
        if isinstance(ev, RecvEv):
            return ("recv", ev)
        if isinstance(ev, CollEv):
            return ("coll", ev)
        return ("other", ev)

    def _classify_stuck(self) -> None:
        stuck = []
        for rank in range(self.nprocs):
            reason = self._blocking_reason(rank)
            if reason is not None:
                stuck.append((rank, *reason))
        if not stuck:
            return
        reported = False
        for rank, kind, ev in stuck:
            if isinstance(ev, SendEv) and not self._counterpart_exists(
                    rank, ev):
                dst = _conc(ev.dst)
                where = (f"rank {dst} never posts a matching receive"
                         if dst is not None
                         and 0 <= dst < self.nprocs else
                         f"destination rank {ev.dst} does not exist in "
                         f"a {self.nprocs}-process job")
                self.findings.append(Finding(
                    "unmatched-send", ERROR, ev.path, ev.line,
                    f"rank {rank} blocks sending to rank {ev.dst} "
                    f"(tag {ev.tag}) on {ev.ctx}: {where}"))
                reported = True
            elif isinstance(ev, RecvEv) and not self._counterpart_exists(
                    rank, ev):
                src = _conc(ev.src)
                where = (f"rank {src} never sends one"
                         if src is not None
                         and 0 <= src < self.nprocs else
                         f"source rank {ev.src} does not exist in a "
                         f"{self.nprocs}-process job")
                self.findings.append(Finding(
                    "unmatched-recv", ERROR, ev.path, ev.line,
                    f"rank {rank} blocks waiting for a message from "
                    f"rank {ev.src} (tag {ev.tag}) on {ev.ctx}: {where}"))
                reported = True
        if reported:
            return
        # every stuck event has a counterpart somewhere: a true cycle
        sends_only = all(isinstance(ev, SendEv) and kind == "send"
                         for _r, kind, ev in stuck)
        who = ", ".join(f"rank {r} at {ev.location} ({kind})"
                        for r, kind, ev in stuck)
        if sends_only:
            anchor = stuck[0][2]
            self.findings.append(Finding(
                "send-deadlock", ERROR, anchor.path, anchor.line,
                f"head-to-head blocking sends above the eager limit "
                f"({self.eager} B): {who}; every rank is in a "
                f"rendezvous send and none can reach its receive — "
                f"reorder one side (even/odd) or use "
                f"Isend/Sendrecv"))
        else:
            anchor = stuck[0][2]
            self.findings.append(Finding(
                "deadlock", ERROR, anchor.path, anchor.line,
                f"the schedule wedges with {len(stuck)} rank(s) "
                f"blocked: {who}"))

    def _leftovers(self) -> None:
        if any(self.pc[r] < len(self.prog[r]) for r in range(self.nprocs)):
            return                       # stuck states already reported
        for (ctx, src, dst), fifo in sorted(self.chan.items()):
            for ev in fifo:
                self.findings.append(Finding(
                    "unmatched-send", ERROR, ev.path, ev.line,
                    f"rank {src} sends to rank {dst} (tag {ev.tag}) on "
                    f"{ctx} but the message is never received"))
        for (ctx, rank), entry in sorted(self.posted.items()):
            for _r, ev in entry:
                self.findings.append(Finding(
                    "unmatched-recv", ERROR, ev.path, ev.line,
                    f"rank {rank} posts a receive from rank {ev.src} "
                    f"(tag {ev.tag}) on {ctx} that no send ever "
                    f"matches"))
        for rid, (rank, ev) in sorted(self.pending_isend.items()):
            self.findings.append(Finding(
                "unmatched-send", ERROR, ev.path, ev.line,
                f"rank {rank}'s Isend to rank {ev.dst} (tag {ev.tag}) "
                f"on {ev.ctx} is above the eager limit and no matching "
                f"receive is ever posted"))

    def _type_mismatches(self) -> None:
        for sev, rev, srank, rrank in self.matched_pairs:
            sbase, scount = sev.sig
            rbase, rcount = rev.sig
            if sbase not in ("?",) and rbase not in ("?",) \
                    and sbase != rbase:
                self.findings.append(Finding(
                    "type-mismatch", WARNING, rev.path, rev.line,
                    f"receive datatype {rbase} does not match the "
                    f"{sbase} send at {sev.location} (rank {srank} -> "
                    f"rank {rrank}, tag {sev.tag})"))
            elif isinstance(scount, int) and isinstance(rcount, int) \
                    and scount > rcount:
                self.findings.append(Finding(
                    "type-mismatch", WARNING, rev.path, rev.line,
                    f"send of {scount} {sbase} element(s) at "
                    f"{sev.location} overflows this receive of "
                    f"{rcount} (rank {srank} -> rank {rrank}, "
                    f"tag {sev.tag}): the message would be truncated"))
