"""MPI 1.1 error classes, codes and exceptions.

The MPI standard defines a fixed set of *error classes*; implementations map
their richer internal error codes onto these classes via ``MPI_Error_class``.
We keep the mapping trivial (code == class) like many small MPI
implementations of the era.

The object-oriented layer surfaces failures as :class:`MPIException` when the
active error handler is ``ERRORS_RETURN``-like, and lets the exception
propagate fatally (aborting the job) under ``ERRORS_ARE_FATAL``.
"""

from __future__ import annotations

# --- MPI 1.1 error classes -------------------------------------------------
SUCCESS = 0
ERR_BUFFER = 1
ERR_COUNT = 2
ERR_TYPE = 3
ERR_TAG = 4
ERR_COMM = 5
ERR_RANK = 6
ERR_REQUEST = 7
ERR_ROOT = 8
ERR_GROUP = 9
ERR_OP = 10
ERR_TOPOLOGY = 11
ERR_DIMS = 12
ERR_ARG = 13
ERR_UNKNOWN = 14
ERR_TRUNCATE = 15
ERR_OTHER = 16
ERR_INTERN = 17
ERR_PENDING = 18
ERR_IN_STATUS = 19
# --- ULFM fault-tolerance error classes (MPI Forum FT proposal) -------------
ERR_PROC_FAILED = 20
ERR_REVOKED = 21
ERR_LASTCODE = 21

_ERROR_STRINGS = {
    SUCCESS: "no error",
    ERR_BUFFER: "invalid buffer pointer",
    ERR_COUNT: "invalid count argument",
    ERR_TYPE: "invalid datatype argument",
    ERR_TAG: "invalid tag argument",
    ERR_COMM: "invalid communicator",
    ERR_RANK: "invalid rank",
    ERR_REQUEST: "invalid request (handle)",
    ERR_ROOT: "invalid root",
    ERR_GROUP: "invalid group",
    ERR_OP: "invalid operation",
    ERR_TOPOLOGY: "invalid topology",
    ERR_DIMS: "invalid dimension argument",
    ERR_ARG: "invalid argument of some other kind",
    ERR_UNKNOWN: "unknown error",
    ERR_TRUNCATE: "message truncated on receive",
    ERR_OTHER: "known error not in this list",
    ERR_INTERN: "internal MPI (implementation) error",
    ERR_PENDING: "pending request",
    ERR_IN_STATUS: "error code is in status",
    ERR_PROC_FAILED: "process failed",
    ERR_REVOKED: "communicator revoked",
}


def error_class(code: int) -> int:
    """Map an error code onto its MPI error class (identity mapping here)."""
    if 0 <= code <= ERR_LASTCODE:
        return code
    return ERR_UNKNOWN


def error_string(code: int) -> str:
    """Return the standard text for an error code (``MPI_Error_string``)."""
    return _ERROR_STRINGS.get(error_class(code), _ERROR_STRINGS[ERR_UNKNOWN])


class MPIException(Exception):
    """Exception carrying an MPI error class.

    Raised by the runtime and the binding layers on any erroneous call; the
    ``error_code`` attribute holds one of the ``ERR_*`` classes above.
    """

    def __init__(self, error_code: int, message: str = ""):
        self.error_code = int(error_code)
        detail = error_string(self.error_code)
        text = f"MPI error {self.error_code} ({detail})"
        if message:
            text = f"{text}: {message}"
        super().__init__(text)
        self.message = message

    def __reduce__(self):
        # default exception pickling replays ``args`` (the formatted
        # text) into __init__, which expects an error code — so an
        # MPIException would not survive the process backend's wire
        # without this
        return (type(self), (self.error_code, self.message))

    def Get_error_class(self) -> int:
        return error_class(self.error_code)

    def Get_error_string(self) -> str:
        return error_string(self.error_code)


class AbortException(MPIException):
    """Raised in every rank of a job when the job is poisoned.

    ``origin_rank`` is the world rank that poisoned the job (-1 when the
    origin is not a rank, e.g. the executor's hung-job timeout).  When the
    poison was triggered by an exception — a rank thread dying, a fatal
    error under ``ERRORS_ARE_FATAL`` — that root cause is preserved as
    ``__cause__``, which the executor uses to fold abort-victims' failures
    back to the originating rank.
    """

    def __init__(self, errorcode: int = 1, origin_rank: int = -1,
                 cause: BaseException | None = None):
        super().__init__(ERR_OTHER, f"job aborted by rank {origin_rank} "
                                    f"with code {errorcode}")
        self.abort_code = errorcode
        self.origin_rank = origin_rank
        if cause is not None:
            self.__cause__ = cause

    def __reduce__(self):
        # the cause is serialized separately by the abort wire protocol
        # (pickle drops __cause__); errorcode/origin must round-trip
        return (type(self), (self.abort_code, self.origin_rank))


class ProcFailedException(MPIException):
    """A peer process died; the operation could not complete (ULFM).

    Unlike :class:`AbortException` this is *recoverable*: under
    ``ERRORS_RETURN`` it surfaces to the caller, who may ``Revoke`` the
    communicator and ``Shrink`` to the survivors.  ``failed_rank`` is the
    world rank of the dead peer (-1 when more than one or unknown).
    """

    def __init__(self, failed_rank: int = -1, message: str = ""):
        if not message:
            message = (f"rank {failed_rank} failed" if failed_rank >= 0
                       else "a peer process failed")
        super().__init__(ERR_PROC_FAILED, message)
        self.failed_rank = int(failed_rank)

    def __reduce__(self):
        return (type(self), (self.failed_rank, self.message))


class RevokedException(MPIException):
    """The communicator was revoked (``Comm.Revoke``) — ULFM semantics.

    Every pending and future operation on a revoked communicator
    completes with this error, except the fault-tolerant trio
    ``Shrink`` / ``Agree`` / ``Is_revoked`` (and ``Free``).
    """

    def __init__(self, context: int = -1, message: str = ""):
        if not message:
            message = f"communicator (context {context}) was revoked"
        super().__init__(ERR_REVOKED, message)
        self.context = int(context)

    def __reduce__(self):
        return (type(self), (self.context, self.message))
