"""Benchmark environments: the columns of Table 1.

Each environment pairs a *platform model* (WMPI, MPICH, Wsock, Linux ×
SM/DM) with an *API level* (``capi`` for the ``-C`` columns, ``mpijava``
for ``-J``, ``raw`` for Wsock) and a *timing mode*:

* ``modeled`` — the full MPI stack runs on the in-process transport while a
  :class:`~repro.transport.modeled.ModeledTransport` charges the calibrated
  1999 cost model (:mod:`repro.transport.netmodel`) to a virtual clock;
  this regenerates the paper's published magnitudes deterministically.
* ``measured`` — wall-clock time on live transports: WMPI ↦ the fast path
  (in-process for SM, kernel sockets for DM), MPICH ↦ the packetized
  staging path layered on the same carrier; this validates the paper's
  *shape* claims on real executions.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass

from repro.runtime.engine import Universe
from repro.transport.chunked import ChunkedTransport
from repro.transport.inproc import InprocTransport
from repro.transport.modeled import ModeledTransport
from repro.transport.netmodel import ENVIRONMENTS, NetworkModel
from repro.transport.socket_tcp import SocketTransport
from repro.util.clock import VirtualClock


@dataclass(frozen=True)
class BenchEnv:
    """One benchmark column: platform model × API level × timing mode."""

    model_key: str           # e.g. "WMPI_SM" (see netmodel.ENVIRONMENTS)
    api: str                 # "capi" | "mpijava" | "raw"
    timing: str              # "modeled" | "measured"

    @property
    def model(self) -> NetworkModel:
        return ENVIRONMENTS[self.model_key]

    @property
    def mode(self) -> str:
        return self.model.mode  # "SM" | "DM"

    @property
    def modeled(self) -> bool:
        return self.timing == "modeled"

    @property
    def key(self) -> str:
        return f"{self.model_key}:{self.api}:{self.timing}"

    @property
    def label(self) -> str:
        """The paper's column label, e.g. ``WMPI-J``."""
        name = self.model.name
        if self.api == "raw":
            return "Wsock"
        return f"{name}-{'J' if self.api == 'mpijava' else 'C'}"


#: Table 1 column order per mode row (paper Table 1)
ENV_TABLE = (("WSOCK", "raw"), ("WMPI", "capi"), ("WMPI", "mpijava"),
             ("MPICH", "capi"), ("MPICH", "mpijava"),
             ("LINUX", "capi"), ("LINUX", "mpijava"))


def timing_modes() -> tuple[str, str]:
    return ("modeled", "measured")


def make_env(platform: str, mode: str, api: str, timing: str) -> BenchEnv:
    return BenchEnv(model_key=f"{platform}_{mode}", api=api, timing=timing)


def build_universe(env: BenchEnv) -> Universe:
    """A two-rank universe configured for one benchmark environment."""
    if env.modeled:
        clock = VirtualClock()
        transport = ModeledTransport(2, env.model, clock,
                                     inner=InprocTransport(2))
        return Universe(2, transport=transport, clock=clock,
                        cost_model=env.model)
    if env.mode == "SM":
        if env.model_key.startswith("WMPI"):
            transport = InprocTransport(2)
        else:  # MPICH/Linux: the packetized portable path
            transport = ChunkedTransport(2)
    else:
        carrier = SocketTransport(2)
        if env.model_key.startswith("WMPI"):
            transport = carrier
        else:
            transport = ChunkedTransport(2, inner=carrier)
    return Universe(2, transport=transport)


# ---------------------------------------------------------------------------
# raw ("Wsock") ping-pong: no MPI stack at all
# ---------------------------------------------------------------------------

def run_raw(env: BenchEnv, sizes, reps: int | None):
    """Raw-transport one-way times, the floor under the MPI columns."""
    from repro.bench.pingpong import default_reps
    out = []
    for size in sizes:
        n = reps or default_reps(size, env.modeled)
        if env.modeled:
            out.append((size, env.model.message_time(size)))
        elif env.mode == "DM":
            out.append((size, _raw_socket_oneway(size, n)))
        else:
            out.append((size, _raw_queue_oneway(size, n)))
    return out


def _raw_socket_oneway(size: int, reps: int) -> float:
    """Echo ``reps`` messages over a kernel socket pair."""
    a, b = socket.socketpair()
    stop = threading.Event()

    def echo():
        try:
            while not stop.is_set():
                data = _recv_exact(b, size)
                if data is None:
                    return
                b.sendall(data)
        except OSError:
            pass

    t = threading.Thread(target=echo, daemon=True)
    t.start()
    payload = bytes(size)
    t0 = time.perf_counter()
    for _ in range(reps):
        a.sendall(payload)
        got = _recv_exact(a, size)
        assert got is not None
    t1 = time.perf_counter()
    stop.set()
    a.close()
    b.close()
    t.join(timeout=2.0)
    return (t1 - t0) / (2 * reps)


def _recv_exact(sock, n):
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except OSError:
            return None
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _raw_queue_oneway(size: int, reps: int) -> float:
    """Echo over bare in-process queues (the SM raw floor)."""
    import queue
    ping: queue.SimpleQueue = queue.SimpleQueue()
    pong: queue.SimpleQueue = queue.SimpleQueue()
    stop = object()

    def echo():
        while True:
            item = ping.get()
            if item is stop:
                return
            pong.put(bytes(item))  # one copy, like a memcpy handoff

    t = threading.Thread(target=echo, daemon=True)
    t.start()
    payload = bytes(size)
    t0 = time.perf_counter()
    for _ in range(reps):
        ping.put(payload)
        pong.get()
    t1 = time.perf_counter()
    ping.put(stop)
    t.join(timeout=2.0)
    return (t1 - t0) / (2 * reps)
