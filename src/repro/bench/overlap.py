"""Compute/communication overlap benchmark (nonblocking collectives).

Measures how much of a collective's cost the schedule engine hides behind
per-rank compute, comparing three phases over the same iteration count:

* ``comm``        — the bare blocking Allreduce loop (the cost to hide);
* ``blocking``    — Allreduce, then compute: communication and compute
  strictly serialize, and every rank additionally idles for the
  iteration's straggler inside the collective;
* ``nonblocking`` — Iallreduce, compute, Wait: contributions ship eagerly
  at the call and the schedule progresses while ranks compute, so the
  straggler's window absorbs the collective.

Compute is modeled as an *idle window* (a sleep), i.e. work executing on
a core the MPI engine does not need — the standard way to measure overlap
capacity without conflating it with host CPU contention (rank threads
share one interpreter here, so a busy-loop "compute" would serialize with
the engine's own memory traffic and measure the GIL, not the engine).
One rank per iteration is the straggler; the rest finish early, which is
exactly the imbalance blocking collectives punish.

The headline metric::

    overlap_ratio = (t_blocking - t_nonblocking) / t_comm

1.0 means the engine hid the entire communication cost behind compute;
0.0 means nonblocking bought nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.executor.runner import mpirun
from repro.mpijava import MPI


@dataclass
class OverlapResult:
    """Median-of-runs wall times for the three phases, seconds."""

    nprocs: int
    count: int
    iters: int
    t_comm: float
    t_blocking: float
    t_nonblocking: float

    @property
    def overlap_ratio(self) -> float:
        """Fraction of the communication cost hidden behind compute."""
        if self.t_comm <= 0:
            return 0.0
        return (self.t_blocking - self.t_nonblocking) / self.t_comm

    @property
    def speedup(self) -> float:
        return self.t_blocking / self.t_nonblocking \
            if self.t_nonblocking > 0 else 0.0

    def report(self) -> str:
        return (f"overlap({self.nprocs} ranks, {self.count} doubles, "
                f"{self.iters} iters): comm {self.t_comm * 1e3:.0f}ms, "
                f"blocking {self.t_blocking * 1e3:.0f}ms, "
                f"nonblocking {self.t_nonblocking * 1e3:.0f}ms, "
                f"ratio {self.overlap_ratio:.2f}, "
                f"speedup {self.speedup:.2f}x")


def _phase_body(mode: str, count: int, iters: int, straggle: float):
    MPI.Init([])
    w = MPI.COMM_WORLD
    me, size = w.Rank(), w.Size()
    sendbuf = np.full(count, me + 1.0)
    recvbuf = np.zeros(count)
    w.Barrier()
    t0 = time.perf_counter()
    for i in range(iters):
        # one straggler per iteration, rotating; the rest finish early
        compute_window = straggle if me == i % size else straggle / 6
        if mode == "comm":
            w.Allreduce(sendbuf, 0, recvbuf, 0, count, MPI.DOUBLE,
                        MPI.SUM)
        elif mode == "blocking":
            w.Allreduce(sendbuf, 0, recvbuf, 0, count, MPI.DOUBLE,
                        MPI.SUM)
            time.sleep(compute_window)
        else:
            req = w.Iallreduce(sendbuf, 0, recvbuf, 0, count, MPI.DOUBLE,
                               MPI.SUM)
            time.sleep(compute_window)
            req.Wait()
    w.Barrier()
    elapsed = time.perf_counter() - t0
    expected = count and sum(r + 1.0 for r in range(size))
    if count and not np.allclose(recvbuf, expected):
        raise AssertionError("overlap benchmark produced a wrong reduction")
    MPI.Finalize()
    return elapsed


def _measure(mode: str, nprocs: int, count: int, iters: int,
             straggle: float, runs: int) -> float:
    samples = [max(mpirun(nprocs, _phase_body,
                          args=(mode, count, iters, straggle)))
               for _ in range(runs)]
    return float(np.median(samples))


def run_overlap(nprocs: int = 4, count: int = 1 << 18, iters: int = 8,
                straggle: float = 0.03, runs: int = 3) -> OverlapResult:
    """Run the three phases; returns median-of-``runs`` wall times."""
    return OverlapResult(
        nprocs=nprocs, count=count, iters=iters,
        t_comm=_measure("comm", nprocs, count, iters, straggle, runs),
        t_blocking=_measure("blocking", nprocs, count, iters, straggle,
                            runs),
        t_nonblocking=_measure("nonblocking", nprocs, count, iters,
                               straggle, runs),
    )


if __name__ == "__main__":  # pragma: no cover - manual invocation
    print(run_overlap().report())
