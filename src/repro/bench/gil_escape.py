"""GIL-escape benchmark: threads-SM vs threads-DM vs procs-DM.

The paper's distributed-memory numbers come from one *process* per rank
(``mpirun``/WMPI daemons); our thread backends keep every rank behind one
GIL, so compute-heavy ranks serialize no matter how many cores the box
has.  This benchmark quantifies the escape:

* **compute kernel** — each rank runs a pure-Python LCG loop (pinned to
  the interpreter, no NumPy release points) and then one ``Allreduce``;
  the job time is the slowest rank's kernel span.  With *N* free cores,
  procs-DM approaches 1× the serial time while both thread backends
  approach N× — the GIL-escape speedup the process backend exists for.
* **pingpong** — 2-rank one-way latency on the thread-DM socketpair path
  vs the cross-process TCP mesh, sizing the cost of real process
  isolation on the wire path.

CLI (writes the BENCH json the roadmap tracks)::

    PYTHONPATH=src python -m repro.bench.gil_escape -n 4 \
        --out BENCH_GIL_ESCAPE.json

Speedup claims are only meaningful when the host actually has the cores:
the json records ``cpu_count`` (and the schedulable ``cpu_affinity``)
alongside every number, and the benchmark test skips its >=2x assertion
below 4 usable cores.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.bench.pingpong import _sweep_main
from repro.executor.procrunner import ProcExecutor
from repro.executor.runner import mpirun

#: default LCG iterations per rank (~0.5 s of pure-Python compute each)
DEFAULT_ITERS = 4_000_000

#: pingpong sweep for the latency comparison
PINGPONG_SIZES = (1, 1024, 65536)
PINGPONG_REPS = 60


def usable_cores() -> int:
    """Cores this job may actually schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def compute_rank_main(iters: int) -> dict:
    """Per-rank body: barrier, GIL-bound LCG loop, Allreduce checksum."""
    from repro.mpijava import MPI
    MPI.Init([])
    w = MPI.COMM_WORLD
    w.Barrier()
    t0 = time.perf_counter()
    x = w.Rank() + 1
    for _ in range(iters):
        x = (x * 1664525 + 1013904223) & 0xFFFFFFFF
    sb = np.array([float(x % 100_000)])
    rb = np.zeros(1)
    w.Allreduce(sb, 0, rb, 0, 1, MPI.DOUBLE, MPI.SUM)
    elapsed = time.perf_counter() - t0
    MPI.Finalize()
    return {"elapsed": elapsed, "checksum": float(rb[0])}


def _serial_kernel(iters: int) -> float:
    t0 = time.perf_counter()
    x = 1
    for _ in range(iters):
        x = (x * 1664525 + 1013904223) & 0xFFFFFFFF
    return time.perf_counter() - t0


def run_compute(backend: str, nprocs: int, iters: int,
                timeout: float = 300.0) -> dict:
    """One backend's compute job; job time = slowest rank's kernel span."""
    if backend == "procs-dm":
        rows = ProcExecutor(nprocs).run(compute_rank_main, args=(iters,),
                                        timeout=timeout)
    elif backend == "threads-sm":
        rows = mpirun(nprocs, compute_rank_main, args=(iters,),
                      transport="inproc", timeout=timeout)
    elif backend == "threads-dm":
        rows = mpirun(nprocs, compute_rank_main, args=(iters,),
                      transport="socket", timeout=timeout)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    checksums = {r["checksum"] for r in rows}
    if len(checksums) != 1:
        raise AssertionError(f"ranks disagree on the Allreduce checksum: "
                             f"{checksums}")
    return {"backend": backend,
            "job_seconds": max(r["elapsed"] for r in rows),
            "per_rank_seconds": [r["elapsed"] for r in rows],
            "checksum": checksums.pop()}


def run_pingpong(backend: str, sizes=PINGPONG_SIZES,
                 reps: int = PINGPONG_REPS) -> dict:
    """2-rank capi pingpong; one-way seconds per size."""
    args = ("capi", tuple(sizes), False, reps)
    if backend == "procs-dm":
        rows = ProcExecutor(2).run(_sweep_main, args=args, timeout=120.0)[0]
    elif backend == "threads-dm":
        rows = mpirun(2, _sweep_main, args=args, transport="socket",
                      timeout=120.0)[0]
    else:
        raise ValueError(f"unknown pingpong backend {backend!r}")
    return {"backend": backend,
            "one_way_seconds": {str(size): t for size, t in rows}}


def run_benchmark(nprocs: int = 4, iters: int = DEFAULT_ITERS,
                  pingpong: bool = True) -> dict:
    """The full sweep; returns the json-ready report."""
    report = {
        "benchmark": "gil_escape",
        "nprocs": nprocs,
        "iters_per_rank": iters,
        "cpu_count": os.cpu_count(),
        "cpu_affinity": usable_cores(),
        "python": sys.version.split()[0],
        "serial_kernel_seconds": _serial_kernel(iters),
        "compute": {},
        "pingpong": {},
    }
    for backend in ("threads-sm", "threads-dm", "procs-dm"):
        report["compute"][backend] = run_compute(backend, nprocs, iters)
    t_threads = min(report["compute"]["threads-sm"]["job_seconds"],
                    report["compute"]["threads-dm"]["job_seconds"])
    t_procs = report["compute"]["procs-dm"]["job_seconds"]
    report["speedup_procs_vs_best_threads"] = t_threads / t_procs
    report["gil_bound_threads"] = (
        report["compute"]["threads-sm"]["job_seconds"]
        / report["serial_kernel_seconds"])
    if pingpong:
        for backend in ("threads-dm", "procs-dm"):
            report["pingpong"][backend] = run_pingpong(backend)
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro.bench.gil_escape")
    ap.add_argument("-n", "--np", dest="nprocs", type=int, default=4)
    ap.add_argument("--iters", type=int, default=DEFAULT_ITERS)
    ap.add_argument("--no-pingpong", action="store_true")
    ap.add_argument("--out", default="BENCH_GIL_ESCAPE.json")
    opts = ap.parse_args(argv)
    report = run_benchmark(opts.nprocs, opts.iters,
                           pingpong=not opts.no_pingpong)
    with open(opts.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    cores = report["cpu_affinity"]
    speedup = report["speedup_procs_vs_best_threads"]
    print(f"cores={cores} nprocs={opts.nprocs} "
          f"serial={report['serial_kernel_seconds']:.2f}s "
          f"threads-SM={report['compute']['threads-sm']['job_seconds']:.2f}s "
          f"threads-DM={report['compute']['threads-dm']['job_seconds']:.2f}s "
          f"procs-DM={report['compute']['procs-dm']['job_seconds']:.2f}s "
          f"speedup={speedup:.2f}x")
    if cores < max(2, opts.nprocs):
        print(f"note: only {cores} schedulable core(s) — the GIL-escape "
              f"speedup needs >= {opts.nprocs} cores to materialize")
    print(f"wrote {opts.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
