"""Minimal ASCII log-log plotting for terminal-rendered figures."""

from __future__ import annotations

import math


def loglog_plot(series: dict[str, tuple[list[int], list[float]]],
                width: int = 72, height: int = 20,
                xlabel: str = "message size (B)",
                ylabel: str = "bandwidth (B/s)") -> str:
    """Render named (x, y) series on a log-log grid of characters."""
    marks = "ox+*#@%&"
    xs_all = [x for xs, _ in series.values() for x in xs if x > 0]
    ys_all = [y for _, ys in series.values() for y in ys if y > 0]
    if not xs_all or not ys_all:
        return "(no data)"
    lx0, lx1 = math.log10(min(xs_all)), math.log10(max(xs_all))
    ly0, ly1 = math.log10(min(ys_all)), math.log10(max(ys_all))
    lx1 = lx1 if lx1 > lx0 else lx0 + 1
    ly1 = ly1 if ly1 > ly0 else ly0 + 1
    grid = [[" "] * width for _ in range(height)]
    for k, (name, (xs, ys)) in enumerate(series.items()):
        m = marks[k % len(marks)]
        for x, y in zip(xs, ys):
            if x <= 0 or y <= 0:
                continue
            col = int((math.log10(x) - lx0) / (lx1 - lx0) * (width - 1))
            row = int((math.log10(y) - ly0) / (ly1 - ly0) * (height - 1))
            grid[height - 1 - row][col] = m
    lines = ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel} [log {10**lx0:.0f} .. {10**lx1:.0f}]   "
                 f"{ylabel} [log {10**ly0:.2g} .. {10**ly1:.2g}]")
    legend = "   ".join(f"{marks[k % len(marks)]}={name}"
                        for k, name in enumerate(series))
    lines.append(" " + legend)
    return "\n".join(lines)
