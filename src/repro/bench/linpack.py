"""The paper's §4.6 LinPack aside: native versus VM compute throughput.

    "a single 200 MHz PentiumPro will achieve in excess of 62 Mflop/s on a
     Fortran version of LinPack.  A test of the Java LinPack code gave a
     peak performance of 22 Mflop/s for the same processor running the
     JVM.  The difference in performance will account for much of the
     additional overhead that mpiJava imposes on C MPI codes."

Our analogue: LU factorization with partial pivoting, once with vectorized
NumPy kernels (compiled/native execution — the "Fortran" role) and once
with pure interpreted Python loops (the "JVM" role).  The figure of merit
is Mflop/s over the standard ``2/3·n³`` LU flop count; the claim to
reproduce is the *ratio* (paper: 62/22 ≈ 2.8× in favour of native).

Usage::

    python -m repro.bench.linpack [--n 200] [--trials 3]
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

import numpy as np

FLOPS = {"lu": lambda n: 2.0 * n ** 3 / 3.0}


def lu_numpy(a: np.ndarray) -> np.ndarray:
    """In-place LU with partial pivoting, vectorized row updates."""
    n = a.shape[0]
    for k in range(n - 1):
        p = k + int(np.argmax(np.abs(a[k:, k])))
        if p != k:
            a[[k, p]] = a[[p, k]]
        a[k + 1:, k] /= a[k, k]
        a[k + 1:, k + 1:] -= np.outer(a[k + 1:, k], a[k, k + 1:])
    return a


def lu_pure_python(a: list[list[float]]) -> list[list[float]]:
    """The same factorization with interpreted scalar loops."""
    n = len(a)
    for k in range(n - 1):
        p = max(range(k, n), key=lambda i: abs(a[i][k]))
        if p != k:
            a[k], a[p] = a[p], a[k]
        akk = a[k][k]
        row_k = a[k]
        for i in range(k + 1, n):
            row_i = a[i]
            m = row_i[k] / akk
            row_i[k] = m
            for j in range(k + 1, n):
                row_i[j] -= m * row_k[j]
    return a


@dataclass
class LinpackResult:
    n: int
    native_mflops: float
    vm_mflops: float

    @property
    def ratio(self) -> float:
        return self.native_mflops / self.vm_mflops


def run_linpack(n: int = 200, trials: int = 3,
                seed: int = 1999) -> LinpackResult:
    rng = np.random.default_rng(seed)
    base = rng.random((n, n)) + n * np.eye(n)
    flops = FLOPS["lu"](n)

    def best(fn, make_input):
        t = min(_timed(fn, make_input) for _ in range(trials))
        return flops / t / 1e6

    native = best(lu_numpy, lambda: base.copy())
    vm = best(lu_pure_python, lambda: [list(map(float, row))
                                       for row in base])
    return LinpackResult(n=n, native_mflops=native, vm_mflops=vm)


def _timed(fn, make_input) -> float:
    data = make_input()
    t0 = time.perf_counter()
    fn(data)
    return time.perf_counter() - t0


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--n", type=int, default=200)
    ap.add_argument("--trials", type=int, default=3)
    ns = ap.parse_args(argv)
    r = run_linpack(ns.n, ns.trials)
    print(f"LinPack LU, n={r.n}")
    print(f"  native (vectorized NumPy): {r.native_mflops:8.1f} Mflop/s")
    print(f"  VM (pure Python loops):    {r.vm_mflops:8.1f} Mflop/s")
    print(f"  native/VM ratio:           {r.ratio:8.2f}x "
          f"(paper: 62/22 = 2.82x)")


if __name__ == "__main__":
    main()
