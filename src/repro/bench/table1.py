"""Regenerate Table 1: time for 1-byte messages (paper §4.3).

Usage::

    python -m repro.bench.table1 [--timing modeled|measured|both]
                                 [--projected-linux] [--reps N]

Modeled timing reproduces the paper's magnitudes from the calibrated cost
model; measured timing reports live wall-clock numbers on this machine's
transports.  Linux columns print "-" by default, as in the paper (JDK 1.2
for Linux was not yet released, §3.3); ``--projected-linux`` fills them
from the projected model parameters instead.
"""

from __future__ import annotations

import argparse

from repro.bench.environments import ENV_TABLE, make_env
from repro.bench.pingpong import run_pingpong
from repro.bench.report import format_table, us
from repro.transport.netmodel import PAPER_TABLE1


def generate_table1(timing: str = "modeled", projected_linux: bool = False,
                    reps: int | None = None) -> dict:
    """Compute the table; returns {(mode, label): one-way seconds|None}."""
    out = {}
    for mode in ("SM", "DM"):
        for platform, api in ENV_TABLE:
            env = make_env(platform, mode, api, timing)
            if platform == "LINUX" and not projected_linux:
                out[(mode, env.label)] = None
                continue
            result = run_pingpong(env, sizes=(1,), reps=reps)
            out[(mode, env.label)] = result.times[0]
    return out


def render(table: dict, timing: str, compare_paper: bool = True) -> str:
    labels = []
    for platform, api in ENV_TABLE:
        env = make_env(platform, "SM", api, timing)
        if env.label not in labels:
            labels.append(env.label)
    headers = ["mode"] + labels
    rows = []
    for mode in ("SM", "DM"):
        row = [mode]
        for label in labels:
            t = table.get((mode, label))
            row.append("-" if t is None else f"{us(t)} us")
        rows.append(row)
    text = format_table(headers, rows,
                        title=f"Table 1 — time for 1-byte messages "
                              f"({timing} timing)")
    if compare_paper:
        rows = []
        for (mode, label), paper_us in sorted(PAPER_TABLE1.items()):
            t = table.get((mode, label))
            if t is None:
                continue
            ours = t * 1e6
            rows.append([mode, label, f"{paper_us:.1f}", f"{ours:.1f}",
                         f"{ours / paper_us:.3f}"])
        text += "\n\n" + format_table(
            ["mode", "env", "paper us", "ours us", "ratio"], rows,
            title="comparison with the published Table 1")
    return text


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--timing", default="modeled",
                    choices=["modeled", "measured", "both"])
    ap.add_argument("--projected-linux", action="store_true")
    ap.add_argument("--reps", type=int, default=None)
    ns = ap.parse_args(argv)
    timings = ["modeled", "measured"] if ns.timing == "both" \
        else [ns.timing]
    for timing in timings:
        table = generate_table1(timing, ns.projected_linux, ns.reps)
        print(render(table, timing, compare_paper=(timing == "modeled")))
        print()


if __name__ == "__main__":
    main()
