"""Tracing-overhead benchmark: what does observability cost?

Three modes of the same 8 B capi pingpong (the latency-dominated kernel
where per-call overhead is most visible):

* ``baseline`` — tracing never enabled this run;
* ``disabled`` — tracing was enabled once, then disabled again, so every
  instrumentation point executes its ``if TRACE.enabled:`` fast path;
* ``enabled``  — tracing on, events recorded into the in-memory rings.

The acceptance bar is the disabled mode: instrumentation that is off must
cost no more than :data:`OVERHEAD_LIMIT` (3%) over never-instrumented.
Trials are interleaved across modes so clock drift and CPU-frequency
excursions hit all modes alike, and each mode reports its best trial —
the standard way to compare code paths through scheduler noise.

CLI: ``python -m repro.bench.overhead [-o BENCH_OVERHEAD.json]``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.pingpong import _pingpong_capi
from repro.executor.runner import MPIExecutor
from repro.obs.trace import TRACE

SCHEMA = "repro-overhead/1"
MODES = ("baseline", "disabled", "enabled")
OVERHEAD_LIMIT = 1.03       # disabled-mode budget vs baseline
SIZE = 8
REPS = 2000
TRIALS = 5


def _enter_mode(mode: str) -> None:
    if mode == "enabled":
        TRACE.enable()
    elif mode == "disabled":
        TRACE.enable()      # flip once so module state mirrors a real
        TRACE.disable()     # enable->disable cycle, then measure off
    else:
        TRACE.disable()


def _leave_mode() -> None:
    TRACE.disable()
    TRACE.reset()


def _one_trial(size: int, reps: int) -> float:
    """One pingpong job; returns the one-way latency in seconds."""
    with MPIExecutor(2, transport="inproc") as ex:
        times = ex.run(lambda: _pingpong_capi_rank(size, reps))
    return max(times)       # both ranks time the same loop; take the
    # conservative reading


def _pingpong_capi_rank(size: int, reps: int) -> float:
    from repro.runtime.engine import current_runtime
    return _pingpong_capi(current_runtime().world_rank, size, reps)


def run(size: int = SIZE, reps: int = REPS, trials: int = TRIALS,
        log=print) -> list[dict]:
    """Interleaved trials; one row per mode with the best one-way time."""
    best: dict[str, float] = {m: float("inf") for m in MODES}
    for trial in range(trials):
        for mode in MODES:
            _enter_mode(mode)
            try:
                one_way = _one_trial(size, reps)
            finally:
                _leave_mode()
            best[mode] = min(best[mode], one_way)
            if log:
                log(f"trial {trial + 1}/{trials} {mode:>8}: "
                    f"{one_way * 1e6:8.3f} us one-way")
    return [{"mode": mode, "size_bytes": size, "reps": reps,
             "trials": trials, "one_way_us": round(best[mode] * 1e6, 3)}
            for mode in MODES]


def build_report(rows: list[dict]) -> dict:
    by_mode = {r["mode"]: r for r in rows}
    base = by_mode["baseline"]["one_way_us"]
    overhead = {
        "disabled_vs_baseline": round(
            by_mode["disabled"]["one_way_us"] / base, 4),
        "enabled_vs_baseline": round(
            by_mode["enabled"]["one_way_us"] / base, 4),
    }
    return {"schema": SCHEMA, "limit_disabled": OVERHEAD_LIMIT,
            "results": rows, "overhead": overhead}


def validate_report(report: dict) -> list[str]:
    """Structural checks; returns a list of problems (empty = valid)."""
    problems = []
    if report.get("schema") != SCHEMA:
        problems.append(f"schema != {SCHEMA!r}")
        return problems
    rows = report.get("results")
    if not isinstance(rows, list) or not rows:
        return problems + ["results missing or empty"]
    modes = set()
    for i, row in enumerate(rows):
        for field in ("mode", "size_bytes", "reps", "one_way_us"):
            if field not in row:
                problems.append(f"results[{i}] missing {field!r}")
        mode = row.get("mode")
        if mode not in MODES:
            problems.append(f"results[{i}] unknown mode {mode!r}")
        modes.add(mode)
        if not row.get("one_way_us", 0) > 0:
            problems.append(f"results[{i}] nonpositive one_way_us")
    if not modes.issuperset(MODES):
        problems.append(f"modes incomplete: have {sorted(map(str, modes))}")
    over = report.get("overhead", {})
    for key in ("disabled_vs_baseline", "enabled_vs_baseline"):
        if not isinstance(over.get(key), (int, float)):
            problems.append(f"overhead.{key} missing")
    limit = report.get("limit_disabled")
    if not isinstance(limit, (int, float)):
        problems.append("limit_disabled missing")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro.bench.overhead",
                                 description=__doc__.splitlines()[0])
    ap.add_argument("-o", "--output", default="BENCH_OVERHEAD.json")
    ap.add_argument("--size", type=int, default=SIZE)
    ap.add_argument("--reps", type=int, default=REPS)
    ap.add_argument("--trials", type=int, default=TRIALS)
    opts = ap.parse_args(argv)
    rows = run(size=opts.size, reps=opts.reps, trials=opts.trials)
    report = build_report(rows)
    for p in validate_report(report):  # pragma: no cover - internal bug
        print(f"INTERNAL SCHEMA ERROR: {p}", file=sys.stderr)
        return 2
    with open(opts.output, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    over = report["overhead"]
    print(f"disabled/baseline = {over['disabled_vs_baseline']:.4f} "
          f"(limit {OVERHEAD_LIMIT}), enabled/baseline = "
          f"{over['enabled_vs_baseline']:.4f} -> {opts.output}")
    return 0 if over["disabled_vs_baseline"] <= OVERHEAD_LIMIT else 1


if __name__ == "__main__":
    sys.exit(main())
