"""Regenerate Figures 5 and 6: PingPong bandwidth vs message size.

Usage::

    python -m repro.bench.figures [--mode sm|dm|both]
                                  [--timing modeled|measured]
                                  [--step 2] [--csv]

Figure 5 (SM) compares WMPI-C/WMPI-J/MPICH-C/MPICH-J in shared-memory
mode; Figure 6 (DM) the same over the "Ethernet" (socket) path.  Output is
a CSV block plus an ASCII log-log plot of the bandwidth curves.
"""

from __future__ import annotations

import argparse

from repro.bench.ascii_plot import loglog_plot
from repro.bench.environments import make_env
from repro.bench.pingpong import FIGURE_SIZES, PingPongResult, run_pingpong

#: the four curves of each figure
FIGURE_ENVS = (("WMPI", "capi"), ("WMPI", "mpijava"),
               ("MPICH", "capi"), ("MPICH", "mpijava"))


def generate_figure(mode: str, timing: str = "modeled", step: int = 1,
                    reps: int | None = None, max_size: int | None = None) \
        -> dict[str, PingPongResult]:
    """Sweep all four environments of Figure 5 (mode='SM') or 6 ('DM')."""
    sizes = FIGURE_SIZES[::step]
    if max_size is not None:
        sizes = tuple(s for s in sizes if s <= max_size)
    out = {}
    for platform, api in FIGURE_ENVS:
        env = make_env(platform, mode, api, timing)
        out[env.label] = run_pingpong(env, sizes=sizes, reps=reps)
    return out


def render_csv(results: dict[str, PingPongResult]) -> str:
    labels = list(results)
    sizes = results[labels[0]].sizes
    lines = ["size_bytes," + ",".join(f"{l}_MBps" for l in labels)]
    for i, size in enumerate(sizes):
        cells = [f"{results[l].bandwidths[i] / 1e6:.4f}" for l in labels]
        lines.append(f"{size}," + ",".join(cells))
    return "\n".join(lines)


def render_plot(results: dict[str, PingPongResult], mode: str,
                timing: str) -> str:
    series = {label: (r.sizes, r.bandwidths)
              for label, r in results.items()}
    fig = "Figure 5" if mode == "SM" else "Figure 6"
    title = (f"{fig} — PingPong bandwidth in "
             f"{'Shared' if mode == 'SM' else 'Distributed'} Memory "
             f"({mode}) mode, {timing} timing")
    return title + "\n" + loglog_plot(series)


def main(argv=None) -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--mode", default="both", choices=["sm", "dm", "both"])
    ap.add_argument("--timing", default="modeled",
                    choices=["modeled", "measured"])
    ap.add_argument("--step", type=int, default=2,
                    help="keep every Nth power-of-two size")
    ap.add_argument("--reps", type=int, default=None)
    ap.add_argument("--max-size", type=int, default=None)
    ap.add_argument("--csv", action="store_true", help="CSV only")
    ns = ap.parse_args(argv)
    modes = ["SM", "DM"] if ns.mode == "both" else [ns.mode.upper()]
    for mode in modes:
        results = generate_figure(mode, ns.timing, ns.step, ns.reps,
                                  ns.max_size)
        if not ns.csv:
            print(render_plot(results, mode, ns.timing))
        print(render_csv(results))
        print()


if __name__ == "__main__":
    main()
