"""Table formatting shared by the benchmark CLIs."""

from __future__ import annotations


def format_table(headers: list[str], rows: list[list[str]],
                 title: str = "") -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))

    def fmt(row):
        return "  ".join(str(c).rjust(w) for c, w in zip(row, widths))

    out = []
    if title:
        out.append(title)
    out.append(fmt(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(fmt(r) for r in rows)
    return "\n".join(out)


def us(seconds: float) -> str:
    """Microseconds with one decimal, the paper's Table 1 unit."""
    return f"{seconds * 1e6:.1f}"


def mbs(bytes_per_sec: float) -> str:
    return f"{bytes_per_sec / 1e6:.2f}"
