"""Point-to-point latency/bandwidth sweep: the wire fast path's scoreboard.

A blocking Send/Recv pingpong (the paper's §4.2 kernel) swept over message
sizes 8 B – 4 MB on the live backends:

* ``threads-SM``  — ranks are threads, in-process handoff (no wire);
* ``threads-DM``  — ranks are threads, kernel socketpairs
  (:class:`~repro.transport.socket_tcp.SocketTransport`);
* ``procs-DM``    — ranks are OS processes
  (:class:`~repro.executor.procrunner.ProcExecutor`), swept under
  *both* intra-node carriers (the ``transport`` column): ``shm`` —
  the shared-memory rings of :mod:`repro.transport.shm` — and ``tcp``
  — loopback TCP, forced with ``REPRO_SHM=0``, which is the baseline
  the shm path is measured against.

The DM backends run under three protocol settings — ``auto`` (the default
eager/rendezvous threshold), ``eager`` (threshold forced above every
size) and ``rendezvous`` (threshold forced to 1 byte) — so the crossover
between the two is visible in the data, not folklore.

Two buffer layouts are swept (the ``layout`` column):

* ``contiguous`` — a dense byte buffer, the classic kernel;
* ``strided``    — one ``Vector`` datatype instance per message
  (:data:`STRIDED_BLOCK_ELEMS`-element float64 runs at 50% density),
  proving the layout-IR datapath: derived-datatype messages ride the
  same zero-copy iovec send / direct-landing receive machinery as
  contiguous ones.

Results land in ``BENCH_P2P.json`` (schema ``repro-p2p/3``); a committed
copy at the repo root seeds the performance trajectory, and the CI bench
smoke job regenerates a reduced sweep per push.  Usage::

    PYTHONPATH=src python -m repro.bench.p2p --out BENCH_P2P.json
    PYTHONPATH=src python -m repro.bench.p2p --quick --out BENCH_P2P.json
    PYTHONPATH=src python -m repro.bench.p2p --validate BENCH_P2P.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

SCHEMA = "repro-p2p/3"

#: full sweep: 8 B – 4 MB, dense around the eager/rendezvous band
FULL_SIZES = (8, 32, 128, 512, 2048, 8192, 32768, 65536, 131072,
              262144, 524288, 1048576, 2097152, 4194304)
QUICK_SIZES = (8, 8192, 262144, 1048576)

LAYOUTS = ("contiguous", "strided")

#: strided sweep shape: float64 runs of STRIDED_BLOCK_ELEMS elements at
#: a STRIDED_STRIDE_FACTOR x stride (50% density) — e.g. the rows of
#: every other matrix column, the paper's canonical Vector use.  Sizes
#: below are *data* bytes; the smallest implies >= 2 runs.
STRIDED_BLOCK_ELEMS = 4096
STRIDED_STRIDE_FACTOR = 2
STRIDED_SIZES = (65536, 131072, 262144, 524288, 1048576, 2097152,
                 4194304)
STRIDED_QUICK_SIZES = (65536, 1048576)

BACKENDS = ("threads-SM", "threads-DM", "procs-DM")

#: the carrier under each row (the ``transport`` column): ``inproc`` —
#: direct handoff (threads-SM), ``tcp`` — kernel sockets (threads-DM
#: socketpairs, or the procs-DM loopback mesh under ``REPRO_SHM=0``),
#: ``shm`` — the shared-memory rings (procs-DM default)
TRANSPORT_KINDS = ("inproc", "tcp", "shm")

#: protocol knob -> forced eager limit (None = leave the default)
PROTOCOLS = {"auto": None, "eager": 1 << 62, "rendezvous": 1}

_PING, _PONG = 1001, 1002


#: timed trials per (size, protocol); the best is reported, which filters
#: scheduler noise (the box may be a single shared core)
TRIALS = 5


def reps_for(size: int, quick: bool = False) -> int:
    base = max(10, min(400, (1 << 22) // max(size, 256)))
    return max(3, base // 8) if quick else base


def _pingpong(rank: int, size: int, reps: int,
              trials: int = TRIALS) -> float:
    """One rank's half of the kernel; returns best one-way seconds."""
    from repro.jni import capi, handles as H
    buf = np.zeros(max(size, 1), dtype=np.int8)
    best = None
    for _ in range(trials):
        capi.mpi_barrier(H.COMM_WORLD)
        t0 = time.perf_counter()
        if rank == 0:
            for _ in range(reps):
                capi.mpi_send(H.COMM_WORLD, buf, 0, size, H.DT_BYTE, 1,
                              _PING)
                capi.mpi_recv(H.COMM_WORLD, buf, 0, size, H.DT_BYTE, 1,
                              _PONG)
        else:
            for _ in range(reps):
                capi.mpi_recv(H.COMM_WORLD, buf, 0, size, H.DT_BYTE, 0,
                              _PING)
                capi.mpi_send(H.COMM_WORLD, buf, 0, size, H.DT_BYTE, 0,
                              _PONG)
        t1 = time.perf_counter()
        capi.mpi_barrier(H.COMM_WORLD)
        one_way = (t1 - t0) / (2 * reps)
        best = one_way if best is None else min(best, one_way)
    return best


def _strided_pingpong(rank: int, data_bytes: int, reps: int,
                      trials: int = TRIALS) -> float:
    """One rank's half of the Vector-datatype kernel (data_bytes of
    payload selected as 50%-density float64 runs); best one-way s."""
    from repro.jni import capi, handles as H
    block = STRIDED_BLOCK_ELEMS
    stride = STRIDED_STRIDE_FACTOR * block
    count = max(1, data_bytes // (8 * block))
    vec = capi.mpi_type_vector(count, block, stride, H.DT_DOUBLE)
    capi.mpi_type_commit(vec)
    buf = np.zeros((count - 1) * stride + block, dtype=np.float64)
    best = None
    for _ in range(trials):
        capi.mpi_barrier(H.COMM_WORLD)
        t0 = time.perf_counter()
        if rank == 0:
            for _ in range(reps):
                capi.mpi_send(H.COMM_WORLD, buf, 0, 1, vec, 1, _PING)
                capi.mpi_recv(H.COMM_WORLD, buf, 0, 1, vec, 1, _PONG)
        else:
            for _ in range(reps):
                capi.mpi_recv(H.COMM_WORLD, buf, 0, 1, vec, 0, _PING)
                capi.mpi_send(H.COMM_WORLD, buf, 0, 1, vec, 0, _PONG)
        t1 = time.perf_counter()
        capi.mpi_barrier(H.COMM_WORLD)
        one_way = (t1 - t0) / (2 * reps)
        best = one_way if best is None else min(best, one_way)
    capi.mpi_type_free(vec)
    return best


def _sweep_main(sizes, reps_list, eager_limit, layout="contiguous"):
    """SPMD body (also the procs-DM child target; must stay module-level
    and importable).  Rank 0 returns [(size, one_way_seconds), ...]."""
    from repro.jni import capi, handles as H
    from repro.transport import wire
    if eager_limit is not None:
        wire.set_eager_limit(eager_limit)
    capi.mpi_init([])
    rank = capi.mpi_comm_rank(H.COMM_WORLD)
    kernel = _pingpong if layout == "contiguous" else _strided_pingpong
    out = []
    for size, reps in zip(sizes, reps_list):
        out.append((size, kernel(rank, size, reps)))
    capi.mpi_finalize()
    return out if rank == 0 else None


def _run_threads(sizes, reps_list, eager_limit, dm: bool,
                 layout="contiguous"):
    from repro.executor.runner import MPIExecutor
    from repro.runtime.engine import Universe
    from repro.transport import wire
    from repro.transport.inproc import InprocTransport
    from repro.transport.socket_tcp import SocketTransport
    transport = SocketTransport(2) if dm else InprocTransport(2)
    # thread backends share this process's eager-limit global (the rank
    # body sets it): restore it so a forced protocol cannot leak into
    # whatever runs after the sweep
    prev = wire.eager_limit()
    try:
        with MPIExecutor(2, universe=Universe(2,
                                              transport=transport)) as ex:
            return ex.run(_sweep_main,
                          args=(tuple(sizes), tuple(reps_list),
                                eager_limit, layout))[0]
    finally:
        wire.set_eager_limit(prev)


def _run_procs(sizes, reps_list, eager_limit, layout="contiguous",
               shm=True, timeout=300.0):
    from repro.executor.procrunner import ProcExecutor
    prev = os.environ.get("REPRO_SHM")
    os.environ["REPRO_SHM"] = "1" if shm else "0"
    try:
        with ProcExecutor(2) as ex:
            return ex.run(_sweep_main,
                          args=(tuple(sizes), tuple(reps_list),
                                eager_limit, layout),
                          timeout=timeout)[0]
    finally:
        if prev is None:
            os.environ.pop("REPRO_SHM", None)
        else:
            os.environ["REPRO_SHM"] = prev


def run_sweep(sizes=FULL_SIZES, backends=BACKENDS,
              protocols=("auto", "eager", "rendezvous"),
              layouts=LAYOUTS, strided_sizes=None,
              quick: bool = False, log=print) -> list[dict]:
    """Run the sweep; returns rows of the ``results`` schema array.

    The strided layout runs under the ``auto`` protocol only (the
    protocol crossover is characterized by the contiguous sweep; the
    strided sweep answers "do derived datatypes keep up", and its
    ``size_bytes`` are *data* bytes, excluding the stride gaps).
    """
    if strided_sizes is None:
        strided_sizes = STRIDED_QUICK_SIZES if quick else STRIDED_SIZES
    rows = []
    for backend in backends:
        # procs-DM runs under both intra-node carriers: the shared
        # rings, and loopback TCP (REPRO_SHM=0) as their baseline
        if backend == "procs-DM":
            transports = ("shm", "tcp")
        elif backend == "threads-SM":
            transports = ("inproc",)
        else:
            transports = ("tcp",)
        for transport in transports:
            for layout in layouts:
                # SM has no wire protocol: one pass, recorded as
                # "auto"; the strided sweep is auto-only by design
                backend_protocols = ("auto",) \
                    if backend == "threads-SM" or layout == "strided" \
                    else protocols
                lay_sizes = sizes if layout == "contiguous" \
                    else strided_sizes
                for protocol in backend_protocols:
                    limit = PROTOCOLS[protocol]
                    reps_list = [reps_for(s, quick) for s in lay_sizes]
                    if backend == "threads-SM":
                        got = _run_threads(lay_sizes, reps_list, limit,
                                           dm=False, layout=layout)
                    elif backend == "threads-DM":
                        got = _run_threads(lay_sizes, reps_list, limit,
                                           dm=True, layout=layout)
                    else:
                        got = _run_procs(lay_sizes, reps_list, limit,
                                         layout=layout,
                                         shm=(transport == "shm"))
                    for (size, one_way), reps in zip(got, reps_list):
                        rows.append({
                            "backend": backend, "transport": transport,
                            "protocol": protocol, "layout": layout,
                            "size_bytes": int(size), "reps": int(reps),
                            "one_way_us": round(one_way * 1e6, 3),
                            "bandwidth_MBps":
                                round(size / one_way / 1e6, 2)
                                if one_way > 0 else 0.0,
                        })
                    if log:
                        peak = max(r["bandwidth_MBps"] for r in rows
                                   if r["backend"] == backend
                                   and r["transport"] == transport
                                   and r["protocol"] == protocol
                                   and r["layout"] == layout)
                        log(f"  {backend:>10} / {transport:<6} / "
                            f"{layout:<10} / {protocol:<10} peak "
                            f"{peak:9.1f} MB/s")
    return rows


def shm_speedup_vs_tcp(rows) -> dict:
    """Per-(layout, size) procs-DM bandwidth factors: shm over the
    loopback-TCP baseline, ``auto`` protocol rows."""
    tcp = {(r["layout"], r["size_bytes"]): r["bandwidth_MBps"]
           for r in rows if r["backend"] == "procs-DM"
           and r.get("transport") == "tcp" and r["protocol"] == "auto"}
    out: dict[str, dict[str, float]] = {lay: {} for lay in LAYOUTS}
    for r in rows:
        if r["backend"] != "procs-DM" or r.get("transport") != "shm" \
                or r["protocol"] != "auto":
            continue
        key = (r["layout"], r["size_bytes"])
        if tcp.get(key):
            out[r["layout"]][str(r["size_bytes"])] = round(
                r["bandwidth_MBps"] / tcp[key], 2)
    return out


def carry_baseline(baseline: dict, rows) -> dict:
    """Refresh a report's ``baseline`` section against new sweep rows.

    The recorded pre-PR rows are the fixed anchor of the perf
    trajectory; regenerating the sweep keeps them and recomputes the
    per-(layout, size) improvement factors from the fresh threads-DM
    ``auto`` measurements, so ``--out`` over an existing artifact stays
    self-consistent (and keeps passing ``benchmarks/test_p2p.py``).
    Baseline rows without a ``layout`` field are contiguous (they
    predate the strided sweep).
    """
    base_by_key = {(r.get("layout", "contiguous"), r["size_bytes"]): r
                   for r in baseline.get("results", ())}
    improv = {"contiguous": {}, "strided": {}}
    for r in rows:
        key = (r.get("layout", "contiguous"), r["size_bytes"])
        if r["backend"] == "threads-DM" and r["protocol"] == "auto" \
                and key in base_by_key:
            improv[key[0]][str(r["size_bytes"])] = round(
                r["bandwidth_MBps"]
                / base_by_key[key]["bandwidth_MBps"], 2)
    out = dict(baseline)
    out["improvement_vs_baseline_threads_DM"] = improv["contiguous"]
    out["improvement_vs_baseline_threads_DM_strided"] = improv["strided"]
    return out


def build_report(rows, quick: bool = False,
                 baseline: dict | None = None) -> dict:
    from repro.transport.wire import eager_limit
    report = {
        "schema": SCHEMA,
        "created_unix": int(time.time()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "cpus": os.cpu_count(),
        "quick": bool(quick),
        "eager_limit_default": eager_limit(),
        "results": rows,
    }
    speedup = shm_speedup_vs_tcp(rows)
    if any(speedup.values()):
        report["shm_speedup_vs_procs_tcp"] = speedup
    if baseline is not None:
        report["baseline"] = baseline
    return report


def validate_report(report: dict) -> list[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems = []
    if not isinstance(report, dict):
        return ["report is not an object"]
    if report.get("schema") != SCHEMA:
        problems.append(f"schema != {SCHEMA!r}")
    for field in ("created_unix", "python", "cpus",
                  "eager_limit_default", "results"):
        if field not in report:
            problems.append(f"missing field {field!r}")
    rows = report.get("results", [])
    if not isinstance(rows, list) or not rows:
        problems.append("results must be a non-empty array")
        rows = []
    for i, row in enumerate(rows):
        for field, typ in (("backend", str), ("transport", str),
                           ("protocol", str), ("layout", str),
                           ("size_bytes", int), ("reps", int),
                           ("one_way_us", (int, float)),
                           ("bandwidth_MBps", (int, float))):
            if not isinstance(row.get(field), typ):
                problems.append(f"results[{i}].{field} missing/mistyped")
                break
        else:
            if row["backend"] not in BACKENDS:
                problems.append(f"results[{i}].backend unknown: "
                                f"{row['backend']!r}")
            if row["transport"] not in TRANSPORT_KINDS:
                problems.append(f"results[{i}].transport unknown: "
                                f"{row['transport']!r}")
            if row["protocol"] not in PROTOCOLS:
                problems.append(f"results[{i}].protocol unknown: "
                                f"{row['protocol']!r}")
            if row["layout"] not in LAYOUTS:
                problems.append(f"results[{i}].layout unknown: "
                                f"{row['layout']!r}")
            if row["size_bytes"] <= 0 or row["one_way_us"] <= 0:
                problems.append(f"results[{i}] non-positive measurement")
    return problems


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro.bench.p2p", description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="reduced sweep (CI smoke): few sizes, fewer reps")
    ap.add_argument("--out", default="BENCH_P2P.json")
    ap.add_argument("--backends", default=",".join(BACKENDS),
                    help=f"comma list from {BACKENDS}")
    ap.add_argument("--validate", metavar="FILE",
                    help="validate an existing report and exit")
    opts = ap.parse_args(argv)

    if opts.validate:
        with open(opts.validate) as fh:
            problems = validate_report(json.load(fh))
        for p in problems:
            print(f"INVALID: {p}", file=sys.stderr)
        print(f"{opts.validate}: " +
              ("ok" if not problems else f"{len(problems)} problem(s)"))
        return 1 if problems else 0

    backends = tuple(b.strip() for b in opts.backends.split(",") if b)
    for b in backends:
        if b not in BACKENDS:
            ap.error(f"unknown backend {b!r} (have {BACKENDS})")
    sizes = QUICK_SIZES if opts.quick else FULL_SIZES
    print(f"p2p sweep: sizes {sizes[0]}..{sizes[-1]} B on "
          f"{', '.join(backends)}")
    rows = run_sweep(sizes=sizes, backends=backends, quick=opts.quick)
    # regenerating over an existing artifact: keep its recorded pre-PR
    # baseline (the trajectory anchor), refresh the improvement factors
    baseline = None
    if os.path.exists(opts.out):
        try:
            with open(opts.out) as fh:
                prior = json.load(fh)
            if isinstance(prior, dict) and "baseline" in prior:
                baseline = carry_baseline(prior["baseline"], rows)
        except (OSError, ValueError):
            pass
    report = build_report(rows, quick=opts.quick, baseline=baseline)
    problems = validate_report(report)
    if problems:  # pragma: no cover - the generator matches its schema
        for p in problems:
            print(f"INTERNAL SCHEMA ERROR: {p}", file=sys.stderr)
        return 2
    with open(opts.out, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {opts.out} ({len(rows)} rows)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
