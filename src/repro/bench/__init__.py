"""Benchmark harness reproducing the paper's evaluation (§4).

* :mod:`repro.bench.pingpong` — the PingPong kernel (paper §4.2), in three
  variants: OO binding ("J"), direct stub calls ("C"), raw transport
  ("Wsock").
* :mod:`repro.bench.environments` — the seven benchmark environments of
  Table 1, in *modeled* (virtual clock calibrated to the paper) and
  *measured* (wall clock on live transports) timing modes.
* :mod:`repro.bench.table1`, :mod:`repro.bench.figures` — regenerate
  Table 1 and Figures 5/6 (``python -m repro.bench.table1`` etc.).
* :mod:`repro.bench.linpack` — the §4.6 native-vs-VM LinPack aside.
"""

from repro.bench.pingpong import PingPongResult, run_pingpong
from repro.bench.environments import BenchEnv, ENV_TABLE, timing_modes

__all__ = ["PingPongResult", "run_pingpong", "BenchEnv", "ENV_TABLE",
           "timing_modes"]
