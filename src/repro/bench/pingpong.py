"""The PingPong kernel (paper §4.2).

    "In this program increasing sized messages are sent back and forth
     between processes ... based on standard blocking MPI_Send/MPI_Recv.
     PingPong provides information about latency of MPI_Send/MPI_Recv and
     uni-directional bandwidth.  To ensure that anomalies in message
     timings are minimised the PingPong is repeated many times for each
     message size."

Three code paths, matching the paper's benchmark columns:

* ``api="mpijava"`` — the OO binding (the ``-J`` columns);
* ``api="capi"``    — direct JNI-stub calls (the ``-C`` columns);
* ``api="raw"``     — bare transport echo, no MPI stack (the Wsock column).

Timing uses ``MPI.Wtime``; under a :class:`~repro.util.clock.VirtualClock`
(modeled mode) the measured numbers are the calibrated model's, under the
default wall clock they are live measurements.  One *result time* is the
one-way latency: half the averaged round-trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.executor.runner import MPIExecutor
from repro.jni import capi, handles as H
from repro.mpijava import MPI

#: message sizes of Figures 5/6: 1 B .. 1 MB in powers of two
FIGURE_SIZES = tuple(2 ** k for k in range(0, 21))

_PING_TAG = 1001
_PONG_TAG = 1002
_RELEASE_TAG = 1003


@dataclass
class PingPongResult:
    """One environment's sweep: per-size one-way times and bandwidths."""

    env: str
    api: str
    sizes: list[int] = field(default_factory=list)
    times: list[float] = field(default_factory=list)       # one-way seconds
    bandwidths: list[float] = field(default_factory=list)  # bytes/second

    def add(self, size: int, one_way: float) -> None:
        self.sizes.append(size)
        self.times.append(one_way)
        self.bandwidths.append(size / one_way if one_way > 0 else 0.0)

    def time_at(self, size: int) -> float:
        return self.times[self.sizes.index(size)]

    def bandwidth_at(self, size: int) -> float:
        return self.bandwidths[self.sizes.index(size)]

    def peak_bandwidth(self) -> tuple[int, float]:
        i = int(np.argmax(self.bandwidths))
        return self.sizes[i], self.bandwidths[i]


def default_reps(size: int, modeled: bool) -> int:
    """Repetition count per message size.

    Modeled mode is deterministic, so a handful of reps suffices; measured
    mode repeats many times for small messages, as the paper describes.
    """
    if modeled:
        return 3
    return max(5, min(400, (1 << 22) // max(size, 64)))


def _pingpong_mpijava(rank: int, size: int, reps: int) -> float:
    buf = np.zeros(max(size, 1), dtype=np.int8)
    release = np.zeros(1, dtype=np.int8)
    world = MPI.COMM_WORLD
    world.Barrier()
    t0 = MPI.Wtime()
    if rank == 0:
        for _ in range(reps):
            world.Send(buf, 0, size, MPI.BYTE, 1, _PING_TAG)
            world.Recv(buf, 0, size, MPI.BYTE, 1, _PONG_TAG)
        t1 = MPI.Wtime()
        # hold rank 1 until the timestamp is taken: otherwise its next
        # barrier token races into the shared virtual clock (modeled mode)
        world.Send(release, 0, 0, MPI.BYTE, 1, _RELEASE_TAG)
    else:
        # idle-probe for the first ping so this rank's first charged call
        # lands after rank 0's t0 sample (virtual-clock determinism)
        while world.Iprobe(0, _PING_TAG) is None:
            pass
        for _ in range(reps):
            world.Recv(buf, 0, size, MPI.BYTE, 0, _PING_TAG)
            world.Send(buf, 0, size, MPI.BYTE, 0, _PONG_TAG)
        # idle-probe (no wrapper charge) so this rank adds nothing to the
        # shared virtual clock until rank 0 has taken its timestamp
        while world.Iprobe(0, _RELEASE_TAG) is None:
            pass
        world.Recv(release, 0, 0, MPI.BYTE, 0, _RELEASE_TAG)
        t1 = MPI.Wtime()
    return (t1 - t0) / (2 * reps)


def _pingpong_capi(rank: int, size: int, reps: int) -> float:
    buf = np.zeros(max(size, 1), dtype=np.int8)
    release = np.zeros(1, dtype=np.int8)
    capi.mpi_barrier(H.COMM_WORLD)
    t0 = capi.mpi_wtime()
    if rank == 0:
        for _ in range(reps):
            capi.mpi_send(H.COMM_WORLD, buf, 0, size, H.DT_BYTE, 1,
                          _PING_TAG)
            capi.mpi_recv(H.COMM_WORLD, buf, 0, size, H.DT_BYTE, 1,
                          _PONG_TAG)
        t1 = capi.mpi_wtime()
        capi.mpi_send(H.COMM_WORLD, release, 0, 0, H.DT_BYTE, 1,
                      _RELEASE_TAG)
    else:
        for _ in range(reps):
            capi.mpi_recv(H.COMM_WORLD, buf, 0, size, H.DT_BYTE, 0,
                          _PING_TAG)
            capi.mpi_send(H.COMM_WORLD, buf, 0, size, H.DT_BYTE, 0,
                          _PONG_TAG)
        capi.mpi_recv(H.COMM_WORLD, release, 0, 0, H.DT_BYTE, 0,
                      _RELEASE_TAG)
        t1 = capi.mpi_wtime()
    return (t1 - t0) / (2 * reps)


def _sweep_main(api: str, sizes, modeled: bool, reps_override):
    """Per-rank body of an MPI-based sweep; rank 0 returns the timings."""
    capi.mpi_init([])
    rank = capi.mpi_comm_rank(H.COMM_WORLD)
    kernel = _pingpong_mpijava if api == "mpijava" else _pingpong_capi
    out = []
    for size in sizes:
        reps = reps_override or default_reps(size, modeled)
        one_way = kernel(rank, size, reps)
        out.append((size, one_way))
    capi.mpi_finalize()
    return out if rank == 0 else None


def run_pingpong(env, sizes=(1,), reps: int | None = None) \
        -> PingPongResult:
    """Run the PingPong sweep in one benchmark environment.

    ``env`` is a :class:`~repro.bench.environments.BenchEnv`; the result
    carries one-way times per message size.
    """
    from repro.bench import environments as E
    result = PingPongResult(env=env.key, api=env.api)
    if env.api == "raw":
        for size, one_way in E.run_raw(env, sizes, reps):
            result.add(size, one_way)
        return result
    with MPIExecutor(2, universe=E.build_universe(env)) as ex:
        rows = ex.run(_sweep_main,
                      args=(env.api, tuple(sizes), env.modeled, reps))[0]
    for size, one_way in rows:
        result.add(size, one_way)
    return result
