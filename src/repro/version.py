"""Package version, kept importable without triggering package __init__."""

__version__ = "1.0.0"
