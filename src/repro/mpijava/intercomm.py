"""``Intercomm`` — communicators bridging two disjoint groups.

In MPI 1.1 intercommunicators support point-to-point (inherited from
``Comm``; ranks address the *remote* group), remote inquiry, and ``Merge``.
"""

from __future__ import annotations

from repro.jni import capi
from repro.mpijava.comm import Comm
from repro.mpijava.group import Group


class Intercomm(Comm):
    """Inter-communicator."""

    __slots__ = ()

    def Remote_size(self) -> int:
        """Number of processes in the remote group."""
        return self._guard(capi.mpi_comm_remote_size, self._handle)

    def Remote_group(self) -> Group:
        return Group(self._guard(capi.mpi_comm_remote_group, self._handle))

    def Merge(self, high: bool) -> "Intracomm":
        """Fuse the two groups into one intracommunicator; ``high`` orders
        this side after the other when the flags differ."""
        from repro.mpijava.intracomm import Intracomm
        return Intracomm(self._guard(capi.mpi_intercomm_merge, self._handle,
                                     high))
