"""``Errhandler`` — error-handler objects.

Python has exceptions, so the two predefined handlers map to:

* ``MPI.ERRORS_ARE_FATAL`` (the default, per the standard) — any MPI error
  aborts the whole job, like a fatal error in a C MPI program;
* ``MPI.ERRORS_RETURN`` — the error surfaces to the caller as an
  :class:`~repro.errors.MPIException` (the analogue of checking return
  codes).
"""

from __future__ import annotations

from repro.jni import handles as H


class Errhandler:
    """Opaque error-handler handle."""

    __slots__ = ("_handle", "_name")

    def __init__(self, handle: int, name: str):
        self._handle = handle
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Errhandler({self._name})"


ERRORS_ARE_FATAL = Errhandler(H.ERRORS_ARE_FATAL, "MPI.ERRORS_ARE_FATAL")
ERRORS_RETURN = Errhandler(H.ERRORS_RETURN, "MPI.ERRORS_RETURN")
