"""``Errhandler`` — error-handler objects.

Python has exceptions, so the two predefined handlers map to:

* ``MPI.ERRORS_ARE_FATAL`` (the default, per the standard) — any error,
  MPI or not, poisons the whole job, like a fatal error in a C MPI
  program: every peer rank blocked in any MPI call unwinds with
  :class:`~repro.errors.AbortException`;
* ``MPI.ERRORS_RETURN`` — the error surfaces to the caller as an
  :class:`~repro.errors.MPIException` (the analogue of checking return
  codes); a non-MPI exception escaping user code inside an MPI call is
  wrapped as ``MPIException(ERR_OTHER)`` with the original preserved as
  ``__cause__``.

Error handlers govern how an error *surfaces on the rank that hit it*;
either way, a rank whose thread dies poisons the job (see
:mod:`repro.executor.runner`), so peers never hang on a dead rank.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import AbortException, ERR_OTHER, MPIException
from repro.jni import handles as H
from repro.runtime.engine import current_runtime


def guarded_call(errhandler_of: Callable[[], int], fn, *args):
    """Run ``fn(*args)`` routing any escaping exception through an
    error handler.

    ``errhandler_of()`` yields the active handler's handle, evaluated only
    if an error actually escapes (a request's communicator can change
    handlers between post and wait).  Routing:

    * :class:`AbortException` propagates — the job is already dead;
    * under ``ERRORS_RETURN``, an :class:`MPIException` propagates
      unchanged and any other exception (user reduce op, decode failure…)
      is wrapped as ``MPIException(ERR_OTHER)`` with the original
      preserved as ``__cause__``;
    * under ``ERRORS_ARE_FATAL``, the job is poisoned with the failure as
      the abort's root cause and the abort is raised here.
    """
    try:
        return fn(*args)
    except AbortException:
        raise
    except MPIException as exc:
        if errhandler_of() == H.ERRORS_RETURN:
            raise
        rt = current_runtime()
        # a peer-failure error is the *peer's* fault: poison with the dead
        # rank as origin so the executor folds victims' aborts back to it
        origin = getattr(exc, "failed_rank", -1)
        if origin < 0:
            origin = rt.world_rank
        raise rt.universe.poison(origin, exc.error_code, cause=exc)
    except Exception as exc:
        if errhandler_of() == H.ERRORS_RETURN:
            raise MPIException(
                ERR_OTHER,
                f"{type(exc).__name__} raised in user code during "
                f"{getattr(fn, '__name__', 'an MPI call')}: {exc}") from exc
        rt = current_runtime()
        raise rt.universe.poison(rt.world_rank, 1, cause=exc)


class Errhandler:
    """Opaque error-handler handle."""

    __slots__ = ("_handle", "_name")

    def __init__(self, handle: int, name: str):
        self._handle = handle
        self._name = name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Errhandler({self._name})"


ERRORS_ARE_FATAL = Errhandler(H.ERRORS_ARE_FATAL, "MPI.ERRORS_ARE_FATAL")
ERRORS_RETURN = Errhandler(H.ERRORS_RETURN, "MPI.ERRORS_RETURN")
