"""``Op`` — reduction operations, including user-defined ones.

A user operation subclasses :class:`User_function` (mpiJava style) or is
any callable ``f(invec, inoutvec, count, datatype)`` accumulating into
``inoutvec`` in place.
"""

from __future__ import annotations

from repro.jni import capi


class User_function:
    """Base class for user-defined reduction functions (mpiJava style)."""

    def Call(self, invec, inoutvec, count, datatype) -> None:
        raise NotImplementedError

    def __call__(self, invec, inoutvec, count, datatype) -> None:
        self.Call(invec, inoutvec, count, datatype)


class Op:
    """Opaque reduction-operation handle."""

    __slots__ = ("_handle", "_name")

    def __init__(self, function_or_handle, commute: bool | None = None,
                 name: str = "op"):
        if isinstance(function_or_handle, int):
            self._handle = function_or_handle
        else:
            # Op(function, commute) — the mpiJava constructor
            self._handle = capi.mpi_op_create(function_or_handle,
                                              bool(commute))
        self._name = name

    @staticmethod
    def Create(function, commute: bool) -> "Op":
        """``MPI_Op_create`` as a named constructor."""
        return Op(function, commute)

    def Free(self) -> None:
        capi.mpi_op_free(self._handle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op({self._name}, handle={self._handle})"
