"""PMPI-style profiling interface for the mpiJava binding.

Real MPI implementations expose every ``MPI_*`` entry point a second time
as ``PMPI_*`` so a profiling library can interpose: redefine ``MPI_Send``,
do its bookkeeping, call ``PMPI_Send``.  The binding's analogue hooks the
single choke point every :class:`~repro.mpijava.comm.Comm` member already
passes through (``Comm._guard``): an attached :class:`CommProfiler` sees
each call *by its mpiJava name* ("Send", "Isend", "Bcast", ...) with its
arguments, and decides when — and whether — to invoke the real operation.

>>> from repro.mpijava import MPI
>>> prof = CountingProfiler()
>>> MPI.attach_profiler(prof)
>>> ... # MPI.COMM_WORLD.Send(...), etc.
>>> MPI.detach_profiler(prof)
>>> prof.counts()["Send"]

Profilers stack (last attached runs outermost), exactly like layered PMPI
wrapper libraries.  The disabled fast path is one module-level truthiness
check per call — no allocation, no lock.

``MPI.Pcontrol`` drives the standard levels against the *attached*
profilers: 0 mutes them, 1 re-enables, 2 flushes/resets their state.
"""

from __future__ import annotations

import threading

from repro.obs.trace import TRACE

__all__ = ["CommProfiler", "TracingProfiler", "CountingProfiler",
           "attach", "detach", "dispatch"]

#: attached profiler stack; copy-on-write so the per-call read is a plain
#: list truthiness/iteration with no lock (attach/detach are rare)
_active: list["CommProfiler"] = []
_attach_lock = threading.Lock()

#: ``capi`` stub name -> mpiJava member name ("mpi_send" -> "Send")
_names: dict[str, str] = {}


def display_name(stub_name: str) -> str:
    """The mpiJava-facing name of a ``capi`` stub function."""
    got = _names.get(stub_name)
    if got is None:
        base = stub_name[4:] if stub_name.startswith("mpi_") else stub_name
        got = _names[stub_name] = base[:1].upper() + base[1:]
    return got


class CommProfiler:
    """Base class for PMPI-style interposers.

    Subclasses override :meth:`intercept`; ``invoke()`` runs the next
    layer (another profiler, or the real guarded operation) and returns
    its result.  Not calling ``invoke`` suppresses the operation —
    useful for fault-injection shims — and raising from ``intercept``
    propagates to the caller like any binding error.
    """

    #: Pcontrol(0) mutes a profiler without detaching it
    muted = False

    def intercept(self, comm, name: str, args: tuple, invoke):
        """Interpose on one ``Comm`` call; default is a transparent pass."""
        return invoke()

    def reset(self) -> None:
        """Drop accumulated state (``MPI.Pcontrol(2)``)."""


class TracingProfiler(CommProfiler):
    """Emit one trace span per intercepted call onto the caller's lane.

    Spans land in the :data:`~repro.obs.trace.TRACE` recorder under the
    ``"mpi"`` category, so a merged Chrome trace shows the user-facing
    API timeline above the runtime's internal wire/coll events.
    """

    def intercept(self, comm, name, args, invoke):
        if not TRACE.enabled:
            return invoke()
        from repro.runtime.engine import current_runtime
        rank = current_runtime().world_rank
        t0 = TRACE.now()
        try:
            return invoke()
        finally:
            TRACE.span(rank, f"mpi.{name}", "mpi", t0, {})


class CountingProfiler(CommProfiler):
    """Count calls per entry-point name (an ``mpiP``-style tally)."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def intercept(self, comm, name, args, invoke):
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + 1
        return invoke()

    def counts(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)

    def reset(self) -> None:
        with self._lock:
            self._counts.clear()


def attach(profiler: CommProfiler) -> CommProfiler:
    """Attach a profiler (outermost); returns it for chaining."""
    global _active
    if not isinstance(profiler, CommProfiler):
        raise TypeError(f"expected a CommProfiler, got "
                        f"{type(profiler).__name__}")
    with _attach_lock:
        if profiler not in _active:
            _active = _active + [profiler]
    return profiler


def detach(profiler: CommProfiler) -> None:
    """Detach a profiler; detaching one not attached is a no-op."""
    global _active
    with _attach_lock:
        _active = [p for p in _active if p is not profiler]


def pcontrol(level: int) -> None:
    """Apply an ``MPI.Pcontrol`` level to the attached profilers."""
    if level == 0:
        for p in _active:
            p.muted = True
    elif level == 1:
        for p in _active:
            p.muted = False
    elif level == 2:
        for p in _active:
            p.reset()


def dispatch(comm, fn, args: tuple, invoke):
    """Run one guarded call through the attached profiler stack.

    Called from ``Comm._guard`` only when :data:`_active` is non-empty.
    The stack composes right-to-left: the most recently attached
    profiler sees the call first, like the outermost PMPI wrapper
    library on a link line.
    """
    name = display_name(fn.__name__)
    call = invoke
    for p in _active:       # reversed nesting: later attach = outer layer
        if p.muted:
            continue
        call = (lambda prof, inner: lambda: prof.intercept(
            comm, name, args, inner))(p, call)
    return call()
