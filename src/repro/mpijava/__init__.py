"""The mpiJava object-oriented API (the paper's contribution).

The class hierarchy is lifted from the MPI-2 C++ binding, exactly as the
paper's Figure 1::

    MPI        Comm ─┬─ Intracomm ─┬─ Cartcomm     Datatype   Status
                     │             └─ Graphcomm    Group      Request ─ Prequest
                     └─ Intercomm                  Op         Errhandler

Usage follows the paper's Figure 3 minimal program:

>>> from repro import mpirun
>>> from repro.mpijava import MPI
>>> def hello():
...     MPI.Init([])
...     myrank = MPI.COMM_WORLD.Rank()
...     if myrank == 0:
...         message = MPI.to_chars("Hello, there")
...         MPI.COMM_WORLD.Send(message, 0, len(message), MPI.CHAR, 1, 99)
...         out = None
...     else:
...         message = MPI.new_chars(20)
...         status = MPI.COMM_WORLD.Recv(message, 0, 20, MPI.CHAR, 0, 99)
...         out = MPI.from_chars(message[:status.Get_count(MPI.CHAR)])
...     MPI.Finalize()
...     return out
>>> mpirun(2, hello)[1]
'Hello, there'
"""

from repro.mpijava.mpi import MPI
from repro.mpijava.comm import Comm
from repro.mpijava.intracomm import Intracomm
from repro.mpijava.intercomm import Intercomm
from repro.mpijava.cartcomm import Cartcomm, CartParms, ShiftParms
from repro.mpijava.graphcomm import Graphcomm, GraphParms
from repro.mpijava.group import Group
from repro.mpijava.datatype import Datatype
from repro.mpijava.op import Op, User_function
from repro.mpijava.status import Status
from repro.mpijava.request import Request
from repro.mpijava.prequest import Prequest
from repro.mpijava.errhandler import Errhandler
from repro.mpijava.profiler import (CommProfiler, CountingProfiler,
                                    TracingProfiler)
from repro.errors import MPIException

__all__ = ["MPI", "Comm", "Intracomm", "Intercomm", "Cartcomm", "Graphcomm",
           "Group", "Datatype", "Op", "User_function", "Status", "Request",
           "Prequest", "Errhandler", "MPIException", "CartParms",
           "GraphParms", "ShiftParms", "CommProfiler", "TracingProfiler",
           "CountingProfiler"]
