"""``Intracomm`` — communicators over a single group: collectives and
communicator/topology construction (paper Figure 1)."""

from __future__ import annotations

from typing import Optional

from repro.jni import capi, handles as H
from repro.mpijava.comm import Comm
from repro.mpijava.group import Group
from repro.mpijava.op import Op
from repro.mpijava.request import Request


class Intracomm(Comm):
    """Intra-communicator: all of chapter 4 plus Split/Create/topologies."""

    __slots__ = ()

    # ------------------------------------------------------------------
    # collectives (MPI 1.1 chapter 4)
    # ------------------------------------------------------------------
    def Barrier(self) -> None:
        """Block until every member has entered the barrier."""
        self._guard(capi.mpi_barrier, self._handle)

    def Bcast(self, buf, offset, count, datatype, root) -> None:
        """Broadcast from ``root`` to all members."""
        self._charge(count, datatype)
        self._guard(capi.mpi_bcast, self._handle, buf, offset, count,
                    datatype._handle, root)

    def Gather(self, sendbuf, soffset, scount, sdtype,
               recvbuf, roffset, rcount, rdtype, root) -> None:
        self._charge(scount, sdtype)
        self._guard(capi.mpi_gather, self._handle, sendbuf, soffset, scount,
                    sdtype._handle, recvbuf, roffset, rcount,
                    rdtype._handle, root)

    def Gatherv(self, sendbuf, soffset, scount, sdtype,
                recvbuf, roffset, rcounts, displs, rdtype, root) -> None:
        self._charge(scount, sdtype)
        self._guard(capi.mpi_gatherv, self._handle, sendbuf, soffset,
                    scount, sdtype._handle, recvbuf, roffset, rcounts,
                    displs, rdtype._handle, root)

    def Scatter(self, sendbuf, soffset, scount, sdtype,
                recvbuf, roffset, rcount, rdtype, root) -> None:
        self._charge(rcount, rdtype)
        self._guard(capi.mpi_scatter, self._handle, sendbuf, soffset,
                    scount, sdtype._handle, recvbuf, roffset, rcount,
                    rdtype._handle, root)

    def Scatterv(self, sendbuf, soffset, scounts, displs, sdtype,
                 recvbuf, roffset, rcount, rdtype, root) -> None:
        self._charge(rcount, rdtype)
        self._guard(capi.mpi_scatterv, self._handle, sendbuf, soffset,
                    scounts, displs, sdtype._handle, recvbuf, roffset,
                    rcount, rdtype._handle, root)

    def Allgather(self, sendbuf, soffset, scount, sdtype,
                  recvbuf, roffset, rcount, rdtype) -> None:
        self._charge(scount, sdtype)
        self._guard(capi.mpi_allgather, self._handle, sendbuf, soffset,
                    scount, sdtype._handle, recvbuf, roffset, rcount,
                    rdtype._handle)

    def Allgatherv(self, sendbuf, soffset, scount, sdtype,
                   recvbuf, roffset, rcounts, displs, rdtype) -> None:
        self._charge(scount, sdtype)
        self._guard(capi.mpi_allgatherv, self._handle, sendbuf, soffset,
                    scount, sdtype._handle, recvbuf, roffset, rcounts,
                    displs, rdtype._handle)

    def Alltoall(self, sendbuf, soffset, scount, sdtype,
                 recvbuf, roffset, rcount, rdtype) -> None:
        self._charge(scount * self.Size(), sdtype)
        self._guard(capi.mpi_alltoall, self._handle, sendbuf, soffset,
                    scount, sdtype._handle, recvbuf, roffset, rcount,
                    rdtype._handle)

    def Alltoallv(self, sendbuf, soffset, scounts, sdispls, sdtype,
                  recvbuf, roffset, rcounts, rdispls, rdtype) -> None:
        self._guard(capi.mpi_alltoallv, self._handle, sendbuf, soffset,
                    scounts, sdispls, sdtype._handle, recvbuf, roffset,
                    rcounts, rdispls, rdtype._handle)

    def Reduce(self, sendbuf, soffset, recvbuf, roffset, count, datatype,
               op: Op, root) -> None:
        """Combine contributions with ``op``; result at ``root``."""
        self._charge(count, datatype)
        self._guard(capi.mpi_reduce, self._handle, sendbuf, soffset,
                    recvbuf, roffset, count, datatype._handle, op._handle,
                    root)

    def Allreduce(self, sendbuf, soffset, recvbuf, roffset, count,
                  datatype, op: Op) -> None:
        self._charge(count, datatype)
        self._guard(capi.mpi_allreduce, self._handle, sendbuf, soffset,
                    recvbuf, roffset, count, datatype._handle, op._handle)

    def Reduce_scatter(self, sendbuf, soffset, recvbuf, roffset,
                       recvcounts, datatype, op: Op) -> None:
        self._guard(capi.mpi_reduce_scatter, self._handle, sendbuf, soffset,
                    recvbuf, roffset, recvcounts, datatype._handle,
                    op._handle)

    def Scan(self, sendbuf, soffset, recvbuf, roffset, count, datatype,
             op: Op) -> None:
        """Inclusive prefix reduction along ranks."""
        self._charge(count, datatype)
        self._guard(capi.mpi_scan, self._handle, sendbuf, soffset, recvbuf,
                    roffset, count, datatype._handle, op._handle)

    # ------------------------------------------------------------------
    # nonblocking collectives (schedule-based; complete via Request)
    # ------------------------------------------------------------------
    def Ibarrier(self) -> Request:
        """Nonblocking barrier; complete via ``Wait``/``Test``."""
        return Request(self._guard(capi.mpi_ibarrier, self._handle))

    def Ibcast(self, buf, offset, count, datatype, root) -> Request:
        """Nonblocking broadcast; ``buf`` is off-limits until complete."""
        self._charge(count, datatype)
        return Request(self._guard(capi.mpi_ibcast, self._handle, buf,
                                   offset, count, datatype._handle, root))

    def Igather(self, sendbuf, soffset, scount, sdtype,
                recvbuf, roffset, rcount, rdtype, root) -> Request:
        self._charge(scount, sdtype)
        return Request(self._guard(capi.mpi_igather, self._handle, sendbuf,
                                   soffset, scount, sdtype._handle,
                                   recvbuf, roffset, rcount,
                                   rdtype._handle, root))

    def Iscatter(self, sendbuf, soffset, scount, sdtype,
                 recvbuf, roffset, rcount, rdtype, root) -> Request:
        self._charge(rcount, rdtype)
        return Request(self._guard(capi.mpi_iscatter, self._handle,
                                   sendbuf, soffset, scount, sdtype._handle,
                                   recvbuf, roffset, rcount,
                                   rdtype._handle, root))

    def Iallgather(self, sendbuf, soffset, scount, sdtype,
                   recvbuf, roffset, rcount, rdtype) -> Request:
        self._charge(scount, sdtype)
        return Request(self._guard(capi.mpi_iallgather, self._handle,
                                   sendbuf, soffset, scount, sdtype._handle,
                                   recvbuf, roffset, rcount,
                                   rdtype._handle))

    def Ialltoall(self, sendbuf, soffset, scount, sdtype,
                  recvbuf, roffset, rcount, rdtype) -> Request:
        self._charge(scount * self.Size(), sdtype)
        return Request(self._guard(capi.mpi_ialltoall, self._handle,
                                   sendbuf, soffset, scount, sdtype._handle,
                                   recvbuf, roffset, rcount,
                                   rdtype._handle))

    def Ireduce(self, sendbuf, soffset, recvbuf, roffset, count, datatype,
                op: Op, root) -> Request:
        self._charge(count, datatype)
        return Request(self._guard(capi.mpi_ireduce, self._handle, sendbuf,
                                   soffset, recvbuf, roffset, count,
                                   datatype._handle, op._handle, root))

    def Iallreduce(self, sendbuf, soffset, recvbuf, roffset, count,
                   datatype, op: Op) -> Request:
        self._charge(count, datatype)
        return Request(self._guard(capi.mpi_iallreduce, self._handle,
                                   sendbuf, soffset, recvbuf, roffset,
                                   count, datatype._handle, op._handle))

    # ------------------------------------------------------------------
    # communicator construction
    # ------------------------------------------------------------------
    def Create(self, group: Group) -> Optional["Intracomm"]:
        """New communicator over ``group``; None on non-members (the null
        handle becomes a null result, paper §2.1)."""
        h = self._guard(capi.mpi_comm_create, self._handle, group._handle)
        return None if h == H.COMM_NULL else Intracomm(h)

    def Split(self, color: int, key: int) -> Optional["Intracomm"]:
        """Partition by color, order by key; None for ``MPI.UNDEFINED``."""
        h = self._guard(capi.mpi_comm_split, self._handle, color, key)
        return None if h == H.COMM_NULL else Intracomm(h)

    def Create_intercomm(self, local_leader: int, peer_comm: Comm,
                         remote_leader: int, tag: int) -> "Intercomm":
        from repro.mpijava.intercomm import Intercomm
        return Intercomm(self._guard(capi.mpi_intercomm_create,
                                     self._handle, local_leader,
                                     peer_comm._handle, remote_leader, tag))

    # ------------------------------------------------------------------
    # virtual topologies
    # ------------------------------------------------------------------
    def Create_cart(self, dims, periods, reorder: bool) \
            -> Optional["Cartcomm"]:
        from repro.mpijava.cartcomm import Cartcomm
        h = self._guard(capi.mpi_cart_create, self._handle, dims, periods,
                        reorder)
        return None if h == H.COMM_NULL else Cartcomm(h)

    def Create_graph(self, index, edges, reorder: bool) \
            -> Optional["Graphcomm"]:
        from repro.mpijava.graphcomm import Graphcomm
        h = self._guard(capi.mpi_graph_create, self._handle, index, edges,
                        reorder)
        return None if h == H.COMM_NULL else Graphcomm(h)
