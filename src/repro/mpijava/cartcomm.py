"""``Cartcomm`` — cartesian-topology communicators.

Multi-valued C outputs come back as auxiliary result classes
(``CartParms``, ``ShiftParms``), the pattern the paper describes in §2.1.
"""

from __future__ import annotations

from typing import Optional

from repro.jni import capi, handles as H
from repro.mpijava.intracomm import Intracomm


class CartParms:
    """Result of ``Cartcomm.Get()``: dims, periods, this rank's coords."""

    __slots__ = ("dims", "periods", "coords")

    def __init__(self, dims, periods, coords):
        self.dims = list(dims)
        self.periods = list(periods)
        self.coords = list(coords)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"CartParms(dims={self.dims}, periods={self.periods}, "
                f"coords={self.coords})")


class ShiftParms:
    """Result of ``Cartcomm.Shift()``: source and destination ranks."""

    __slots__ = ("rank_source", "rank_dest")

    def __init__(self, rank_source: int, rank_dest: int):
        self.rank_source = rank_source
        self.rank_dest = rank_dest

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"ShiftParms(source={self.rank_source}, "
                f"dest={self.rank_dest})")


class Cartcomm(Intracomm):
    """Communicator with an attached cartesian grid."""

    __slots__ = ()

    @staticmethod
    def Create_dims(nnodes: int, dims) -> list[int]:
        """``MPI_Dims_create`` — balanced factorization; zero entries are
        free dimensions."""
        return capi.mpi_dims_create(nnodes, list(dims))

    def Dim(self) -> int:
        """Number of grid dimensions (``MPI_Cartdim_get``)."""
        return self._guard(capi.mpi_cartdim_get, self._handle)

    def Get(self) -> CartParms:
        dims, periods, coords = self._guard(capi.mpi_cart_get, self._handle)
        return CartParms(dims, periods, coords)

    def Rank(self, coords=None) -> int:
        """Rank at ``coords`` (``MPI_Cart_rank``); with no argument, this
        process's rank as inherited from ``Comm``."""
        if coords is None:
            return super().Rank()
        return self._guard(capi.mpi_cart_rank, self._handle, coords)

    def Coords(self, rank: int) -> list[int]:
        return self._guard(capi.mpi_cart_coords, self._handle, rank)

    def Shift(self, direction: int, disp: int) -> ShiftParms:
        """Source/destination for a shift along one dimension;
        ``MPI.PROC_NULL`` off a non-periodic edge."""
        src, dst = self._guard(capi.mpi_cart_shift, self._handle,
                               direction, disp)
        return ShiftParms(src, dst)

    def Sub(self, remain_dims) -> Optional["Cartcomm"]:
        """Slice the grid into lower-dimensional sub-grids."""
        h = self._guard(capi.mpi_cart_sub, self._handle, remain_dims)
        return None if h == H.COMM_NULL else Cartcomm(h)

    def Map(self, dims, periods) -> int:
        """Suggested rank placement (``MPI_Cart_map``)."""
        return self._guard(capi.mpi_cart_map, self._handle, dims, periods)
