"""``Group`` — ordered sets of processes (MPI 1.1 §5.3).

Set operations are static members (as in mpiJava); subsetting operations
are instance methods.  Results that C returns through output arrays come
back as plain return values (paper §2.1).
"""

from __future__ import annotations

from repro.jni import capi


class Group:
    """Opaque group handle."""

    __slots__ = ("_handle",)

    def __init__(self, handle: int):
        self._handle = handle

    # -- inquiry -----------------------------------------------------------
    def Size(self) -> int:
        return capi.mpi_group_size(self._handle)

    def Rank(self) -> int:
        """This process's rank in the group, or ``MPI.UNDEFINED``."""
        return capi.mpi_group_rank(self._handle)

    @staticmethod
    def Translate_ranks(group1: "Group", ranks, group2: "Group") \
            -> list[int]:
        """Ranks in group2 of the given ranks of group1 (UNDEFINED where
        absent)."""
        return capi.mpi_group_translate_ranks(group1._handle, ranks,
                                              group2._handle)

    @staticmethod
    def Compare(group1: "Group", group2: "Group") -> int:
        """``MPI.IDENT``, ``MPI.SIMILAR`` or ``MPI.UNEQUAL``."""
        return capi.mpi_group_compare(group1._handle, group2._handle)

    # -- set operations (static, as in mpiJava) --------------------------------
    @staticmethod
    def Union(group1: "Group", group2: "Group") -> "Group":
        return Group(capi.mpi_group_union(group1._handle, group2._handle))

    @staticmethod
    def Intersection(group1: "Group", group2: "Group") -> "Group":
        return Group(capi.mpi_group_intersection(group1._handle,
                                                 group2._handle))

    @staticmethod
    def Difference(group1: "Group", group2: "Group") -> "Group":
        return Group(capi.mpi_group_difference(group1._handle,
                                               group2._handle))

    # -- subsetting --------------------------------------------------------------
    def Incl(self, ranks) -> "Group":
        return Group(capi.mpi_group_incl(self._handle, ranks))

    def Excl(self, ranks) -> "Group":
        return Group(capi.mpi_group_excl(self._handle, ranks))

    def Range_incl(self, ranges) -> "Group":
        """``ranges`` is a sequence of (first, last, stride) triples."""
        return Group(capi.mpi_group_range_incl(self._handle, ranges))

    def Range_excl(self, ranges) -> "Group":
        return Group(capi.mpi_group_range_excl(self._handle, ranges))

    def Free(self) -> None:
        capi.mpi_group_free(self._handle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group(handle={self._handle})"
