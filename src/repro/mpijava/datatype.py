"""``Datatype`` — basic and derived datatypes (paper §2.2).

Derived-type constructors are instance methods of the old type
(``MPI.INT.Vector(3, 2, 4)``), except ``Struct`` which combines several
types and is a static member.  Per the paper's documented restriction, all
types combined by ``Struct`` must share one base type, agreeing with the
element type of the buffer array; there is no ``MPI_BOTTOM``/``Address``.

Destruction is garbage-collected (no explicit ``Free`` needed) but a
``Free`` binding is provided for symmetry with C programs.
"""

from __future__ import annotations

from repro.jni import capi


class Datatype:
    """Opaque datatype handle with derived-type constructors."""

    __slots__ = ("_handle", "_size_bytes", "_name")

    def __init__(self, handle: int, name: str = "derived"):
        self._handle = handle
        self._name = name
        # lazily cached for the binding's per-call byte accounting (like
        # the JNI wrapper caching array element sizes); predefined types
        # are constructed at import time, before any rank is bound
        self._size_bytes = 0 if name == "MPI.OBJECT" else None

    def _cached_size(self) -> int:
        if self._size_bytes is None:
            self._size_bytes = capi.mpi_type_size(self._handle)
        return self._size_bytes

    # -- derived-type constructors -----------------------------------------
    def Contiguous(self, count: int) -> "Datatype":
        """``count`` consecutive copies of this type."""
        return Datatype(capi.mpi_type_contiguous(count, self._handle))

    def Vector(self, count: int, blocklength: int, stride: int) \
            -> "Datatype":
        """``count`` blocks of ``blocklength``, starts ``stride`` apart
        (stride in units of this type's extent)."""
        return Datatype(capi.mpi_type_vector(count, blocklength, stride,
                                             self._handle))

    def Hvector(self, count: int, blocklength: int, stride_bytes: int) \
            -> "Datatype":
        """Like :meth:`Vector` with the stride in bytes."""
        return Datatype(capi.mpi_type_hvector(count, blocklength,
                                              stride_bytes, self._handle))

    def Indexed(self, blocklengths, displacements) -> "Datatype":
        """Blocks of varying length at displacements (in extents)."""
        return Datatype(capi.mpi_type_indexed(blocklengths, displacements,
                                              self._handle))

    def Hindexed(self, blocklengths, byte_displacements) -> "Datatype":
        """Like :meth:`Indexed` with byte displacements."""
        return Datatype(capi.mpi_type_hindexed(blocklengths,
                                               byte_displacements,
                                               self._handle))

    @staticmethod
    def Struct(blocklengths, byte_displacements, types) -> "Datatype":
        """General structure type — restricted to a single base type
        across all members (paper §2.2)."""
        return Datatype(capi.mpi_type_struct(
            blocklengths, byte_displacements,
            [t._handle for t in types]))

    # -- lifecycle ---------------------------------------------------------
    def Commit(self) -> "Datatype":
        """Make the type usable in communication; returns self."""
        capi.mpi_type_commit(self._handle)
        if self._name != "MPI.OBJECT":
            self._size_bytes = capi.mpi_type_size(self._handle)
        return self

    def Free(self) -> None:
        capi.mpi_type_free(self._handle)

    # -- inquiry -------------------------------------------------------------
    def Extent(self) -> int:
        """Extent in bytes (``MPI_Type_extent``)."""
        return capi.mpi_type_extent(self._handle)

    def Size(self) -> int:
        """Bytes of data per item (``MPI_Type_size``)."""
        return capi.mpi_type_size(self._handle)

    def Lb(self) -> int:
        return capi.mpi_type_lb(self._handle)

    def Ub(self) -> int:
        return capi.mpi_type_ub(self._handle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Datatype({self._name}, handle={self._handle})"
