"""``Status`` — result object of receive and probe operations.

As the paper notes (§2.1), the Java binding adds an extra public field
``index``, set by functions like ``Waitany``, because Java cannot return
through reference arguments.
"""

from __future__ import annotations

from repro.jni import capi
from repro.runtime.consts import UNDEFINED


class Status:
    """Source, tag, error of a received message — plus mpiJava's ``index``."""

    __slots__ = ("source", "tag", "error", "index", "_c")

    def __init__(self, cstatus: capi.CStatus):
        self._c = cstatus
        #: rank of the message source (within the receive's communicator)
        self.source = cstatus.source
        #: tag the message was sent with
        self.tag = cstatus.tag
        #: error class associated with the message (0 on success)
        self.error = cstatus.error
        #: position within a request array (Waitany/Testany), else UNDEFINED
        self.index = cstatus.index

    def Get_count(self, datatype) -> int:
        """Number of whole ``datatype`` items received (or ``UNDEFINED``)."""
        return capi.mpi_get_count(self._c, datatype._handle)

    def Get_elements(self, datatype) -> int:
        """Number of basic elements received (may exceed ``Get_count`` ×
        size for a partially filled trailing item)."""
        return capi.mpi_get_elements(self._c, datatype._handle)

    def Test_cancelled(self) -> bool:
        return capi.mpi_test_cancelled(self._c)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        extra = "" if self.index == UNDEFINED else f", index={self.index}"
        return f"Status(source={self.source}, tag={self.tag}{extra})"
