"""``Graphcomm`` — general-graph topology communicators."""

from __future__ import annotations

from repro.jni import capi
from repro.mpijava.intracomm import Intracomm


class GraphParms:
    """Result of ``Graphcomm.Get()``: the index/edges arrays."""

    __slots__ = ("index", "edges")

    def __init__(self, index, edges):
        self.index = list(index)
        self.edges = list(edges)

    @property
    def nnodes(self) -> int:
        return len(self.index)

    @property
    def nedges(self) -> int:
        return len(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphParms(index={self.index}, edges={self.edges})"


class Graphcomm(Intracomm):
    """Communicator with an attached process graph."""

    __slots__ = ()

    def Get_dims(self) -> tuple[int, int]:
        """(nnodes, nedges) of the attached graph (MPI_Graphdims_get)."""
        return self._guard(capi.mpi_graphdims_get, self._handle)

    def Get(self) -> GraphParms:
        index, edges = self._guard(capi.mpi_graph_get, self._handle)
        return GraphParms(index, edges)

    def Neighbours_count(self, rank: int) -> int:
        return self._guard(capi.mpi_graph_neighbors_count, self._handle,
                           rank)

    # both spellings, as a courtesy to the paper's UK/US author mix
    Neighbors_count = Neighbours_count

    def Neighbours(self, rank: int) -> list[int]:
        """Neighbour ranks of ``rank`` (the array result replaces C's
        count+array output pair, paper §2.1)."""
        return self._guard(capi.mpi_graph_neighbors, self._handle, rank)

    Neighbors = Neighbours

    def Map(self, index, edges) -> int:
        return self._guard(capi.mpi_graph_map, self._handle, index, edges)
