"""``Request`` — handle to a non-blocking communication operation.

Static members ``Waitany``/``Waitall``/``Waitsome`` (and the ``Test``
variants) operate on arrays of requests; per the paper §2.1, the Status
objects they produce carry the array ``index`` as an extra field.
"""

from __future__ import annotations

from typing import Optional

from repro.jni import capi, handles as H
from repro.mpijava.errhandler import guarded_call
from repro.mpijava.status import Status
from repro.runtime.consts import UNDEFINED


class Request:
    """One outstanding operation; freed automatically on completion."""

    _handle: int
    _persistent = False

    def __init__(self, handle: int):
        self._handle = handle

    def _guard(self, fn, *args):
        """Run a stub call under the request's communicator's error
        handler — the completion of a nonblocking operation reports its
        failure (e.g. a user reduce op raising inside an i-collective)
        with the same semantics the blocking call would have."""
        return guarded_call(
            lambda: capi.mpi_request_errhandler(self._handle), fn, *args)

    # -- single-request completion ---------------------------------------
    def Wait(self) -> Status:
        """Block until complete; returns the Status (sends included).

        Completing a persistent request deactivates it but keeps the
        handle valid for the next ``Start``.
        """
        status = Status(self._guard(capi.mpi_wait, self._handle))
        if not self._persistent:
            self._handle = H.REQUEST_NULL
        return status

    def Test(self) -> Optional[Status]:
        """Non-blocking completion check; Status if done, else None."""
        done, cstatus = self._guard(capi.mpi_test, self._handle)
        if not done:
            return None
        if not self._persistent:
            self._handle = H.REQUEST_NULL
        return Status(cstatus)

    def Cancel(self) -> None:
        capi.mpi_cancel(self._handle)

    def Free(self) -> None:
        """Explicit ``MPI_Request_free`` (see paper §2.1: Free is explicit
        for Request because it has observable side effects)."""
        capi.mpi_request_free(self._handle)
        self._handle = H.REQUEST_NULL

    def Is_null(self) -> bool:
        return self._handle == H.REQUEST_NULL

    # -- array operations (static members, as in mpiJava) ----------------------
    @staticmethod
    def _handles(requests: list["Request"]) -> list[int]:
        return [r._handle for r in requests]

    @staticmethod
    def _array_guard(handles: list[int], fn, *args):
        """Array-op error routing: lenient across mixed handlers — if any
        involved communicator set ``ERRORS_RETURN`` the error surfaces to
        the caller, otherwise it is fatal (poisons the job)."""
        def errhandler_of():
            for h in handles:
                if capi.mpi_request_errhandler(h) == H.ERRORS_RETURN:
                    return H.ERRORS_RETURN
            return H.ERRORS_ARE_FATAL
        return guarded_call(errhandler_of, fn, *args)

    @staticmethod
    def _mark_done(requests: list["Request"], index: int) -> None:
        req = requests[index]
        if not getattr(req, "_persistent", False):
            req._handle = H.REQUEST_NULL

    @staticmethod
    def Waitany(requests: list["Request"]) -> Status:
        """Wait for any request; ``status.index`` identifies which."""
        hs = Request._handles(requests)
        index, cstatus = Request._array_guard(hs, capi.mpi_waitany, hs)
        if index == UNDEFINED:
            return Status(capi.CStatus(index=UNDEFINED))
        Request._mark_done(requests, index)
        return Status(cstatus)

    @staticmethod
    def Testany(requests: list["Request"]) -> Optional[Status]:
        hs = Request._handles(requests)
        done, index, cstatus = Request._array_guard(hs, capi.mpi_testany, hs)
        if not done:
            return None
        Request._mark_done(requests, index)
        return Status(cstatus)

    @staticmethod
    def Waitall(requests: list["Request"]) -> list[Status]:
        hs = Request._handles(requests)
        statuses = Request._array_guard(hs, capi.mpi_waitall, hs)
        out = []
        for i, c in enumerate(statuses):
            if c is not None:
                Request._mark_done(requests, i)
                out.append(Status(c))
            else:
                out.append(Status(capi.CStatus(index=i)))
        return out

    @staticmethod
    def Testall(requests: list["Request"]) -> Optional[list[Status]]:
        hs = Request._handles(requests)
        done, statuses = Request._array_guard(hs, capi.mpi_testall, hs)
        if not done:
            return None
        out = []
        for i, c in enumerate(statuses):
            if c is not None:
                Request._mark_done(requests, i)
                out.append(Status(c))
            else:
                out.append(Status(capi.CStatus(index=i)))
        return out

    @staticmethod
    def Waitsome(requests: list["Request"]) -> list[Status]:
        """Wait for at least one; returns Statuses with ``index`` set.
        (The array result replaces C's output count, per paper §2.1 —
        the count is just ``len(result)``.)"""
        hs = Request._handles(requests)
        statuses = Request._array_guard(hs, capi.mpi_waitsome, hs)
        for c in statuses:
            Request._mark_done(requests, c.index)
        return [Status(c) for c in statuses]

    @staticmethod
    def Testsome(requests: list["Request"]) -> list[Status]:
        hs = Request._handles(requests)
        statuses = Request._array_guard(hs, capi.mpi_testsome, hs)
        for c in statuses:
            Request._mark_done(requests, c.index)
        return [Status(c) for c in statuses]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "null" if self.Is_null() else f"handle={self._handle}"
        return f"{type(self).__name__}({state})"
