"""``Comm`` — base communicator class (paper §2).

All communication functions in mpiJava are members of ``Comm`` or its
subclasses.  The standard send/receive members have the interfaces the
paper gives verbatim::

    public void Send(Object buf, int offset, int count,
                     Datatype datatype, int dest, int tag)
    public Status Recv(Object buf, int offset, int count,
                       Datatype datatype, int source, int tag)

Buffers are one-dimensional arrays of primitive element type (NumPy arrays
here; lists of objects for ``MPI.OBJECT``), always with an explicit offset.

Every member reaches the runtime through the flat JNI-stub layer
(:mod:`repro.jni.capi`), and charges the binding's per-call wrapper cost to
the job's cost model when one is installed (modeled benchmark mode) — the
two halves of the paper's C-versus-Java comparison.
"""

from __future__ import annotations

from typing import Optional

from repro.jni import capi, handles as H
from repro.mpijava.datatype import Datatype
from repro.mpijava.errhandler import (ERRORS_ARE_FATAL, ERRORS_RETURN,
                                      Errhandler, guarded_call)
from repro.mpijava.group import Group
from repro.mpijava import profiler
from repro.mpijava.prequest import Prequest
from repro.mpijava.request import Request
from repro.mpijava.status import Status
from repro.runtime.engine import current_runtime


class Comm:
    """Base communicator: point-to-point communication and management."""

    __slots__ = ("_handle",)

    def __init__(self, handle: int):
        self._handle = handle

    # ------------------------------------------------------------------
    # binding plumbing: error handlers + wrapper cost accounting
    # ------------------------------------------------------------------
    def _guard(self, fn, *args):
        """Run a stub call under this communicator's error handler.

        *Any* exception escaping the stub layer is routed through the
        communicator's error handler — not just :class:`MPIException`.  A
        non-MPI exception (a user reduction op raising ``ValueError``, a
        payload whose unpickling fails, …) is wrapped as
        ``MPIException(ERR_OTHER)`` with the original preserved as
        ``__cause__`` under ``ERRORS_RETURN``, and poisons the whole job
        under ``ERRORS_ARE_FATAL`` — so one rank's failure can never leave
        its peers blocked.  :class:`AbortException` always propagates: the
        job is already dead.

        When PMPI-style profilers are attached (see
        :mod:`repro.mpijava.profiler`) the call is routed through them;
        the common case is one falsy-list check.
        """
        if profiler._active:
            return profiler.dispatch(
                self, fn, args,
                lambda: guarded_call(
                    lambda: capi.mpi_errhandler_get(self._handle),
                    fn, *args))
        return guarded_call(
            lambda: capi.mpi_errhandler_get(self._handle), fn, *args)

    @staticmethod
    def _charge(count: int, datatype: Datatype) -> None:
        """Charge the OO binding's per-call cost to the job's cost model."""
        rt = current_runtime()
        if rt.universe.cost_model is not None:
            rt.universe.charge_wrapper(count * datatype._cached_size())

    # ------------------------------------------------------------------
    # inquiry
    # ------------------------------------------------------------------
    def Rank(self) -> int:
        """Rank of this process within the communicator."""
        return self._guard(capi.mpi_comm_rank, self._handle)

    def Size(self) -> int:
        """Number of processes in the (local) group."""
        return self._guard(capi.mpi_comm_size, self._handle)

    def Group(self) -> Group:
        """The (local) group associated with this communicator."""
        return Group(self._guard(capi.mpi_comm_group, self._handle))

    @staticmethod
    def Compare(comm1: "Comm", comm2: "Comm") -> int:
        """``MPI.IDENT``/``CONGRUENT``/``SIMILAR``/``UNEQUAL``."""
        return capi.mpi_comm_compare(comm1._handle, comm2._handle)

    def Test_inter(self) -> bool:
        return self._guard(capi.mpi_comm_test_inter, self._handle)

    def Is_null(self) -> bool:
        return self._handle == H.COMM_NULL

    # ------------------------------------------------------------------
    # blocking point-to-point (paper §2 interfaces)
    # ------------------------------------------------------------------
    def Send(self, buf, offset, count, datatype, dest, tag) -> None:
        """Standard-mode blocking send."""
        self._charge(count, datatype)
        self._guard(capi.mpi_send, self._handle, buf, offset, count,
                    datatype._handle, dest, tag)

    def Bsend(self, buf, offset, count, datatype, dest, tag) -> None:
        """Buffered-mode send (requires ``MPI.Buffer_attach``)."""
        self._charge(count, datatype)
        self._guard(capi.mpi_bsend, self._handle, buf, offset, count,
                    datatype._handle, dest, tag)

    def Ssend(self, buf, offset, count, datatype, dest, tag) -> None:
        """Synchronous-mode send: completes when the receive starts."""
        self._charge(count, datatype)
        self._guard(capi.mpi_ssend, self._handle, buf, offset, count,
                    datatype._handle, dest, tag)

    def Rsend(self, buf, offset, count, datatype, dest, tag) -> None:
        """Ready-mode send: the matching receive must already be posted."""
        self._charge(count, datatype)
        self._guard(capi.mpi_rsend, self._handle, buf, offset, count,
                    datatype._handle, dest, tag)

    def Recv(self, buf, offset, count, datatype, source, tag) -> Status:
        """Blocking receive; returns the :class:`Status`."""
        self._charge(count, datatype)
        return Status(self._guard(capi.mpi_recv, self._handle, buf, offset,
                                  count, datatype._handle, source, tag))

    # ------------------------------------------------------------------
    # non-blocking point-to-point
    # ------------------------------------------------------------------
    def Isend(self, buf, offset, count, datatype, dest, tag) -> Request:
        self._charge(count, datatype)
        return Request(self._guard(capi.mpi_isend, self._handle, buf,
                                   offset, count, datatype._handle, dest,
                                   tag))

    def Ibsend(self, buf, offset, count, datatype, dest, tag) -> Request:
        self._charge(count, datatype)
        return Request(self._guard(capi.mpi_ibsend, self._handle, buf,
                                   offset, count, datatype._handle, dest,
                                   tag))

    def Issend(self, buf, offset, count, datatype, dest, tag) -> Request:
        self._charge(count, datatype)
        return Request(self._guard(capi.mpi_issend, self._handle, buf,
                                   offset, count, datatype._handle, dest,
                                   tag))

    def Irsend(self, buf, offset, count, datatype, dest, tag) -> Request:
        self._charge(count, datatype)
        return Request(self._guard(capi.mpi_irsend, self._handle, buf,
                                   offset, count, datatype._handle, dest,
                                   tag))

    def Irecv(self, buf, offset, count, datatype, source, tag) -> Request:
        self._charge(count, datatype)
        return Request(self._guard(capi.mpi_irecv, self._handle, buf,
                                   offset, count, datatype._handle, source,
                                   tag))

    # ------------------------------------------------------------------
    # persistent requests
    # ------------------------------------------------------------------
    def Send_init(self, buf, offset, count, datatype, dest,
                  tag) -> Prequest:
        return Prequest(self._guard(capi.mpi_send_init, self._handle, buf,
                                    offset, count, datatype._handle, dest,
                                    tag))

    def Bsend_init(self, buf, offset, count, datatype, dest,
                   tag) -> Prequest:
        return Prequest(self._guard(capi.mpi_bsend_init, self._handle, buf,
                                    offset, count, datatype._handle, dest,
                                    tag))

    def Ssend_init(self, buf, offset, count, datatype, dest,
                   tag) -> Prequest:
        return Prequest(self._guard(capi.mpi_ssend_init, self._handle, buf,
                                    offset, count, datatype._handle, dest,
                                    tag))

    def Rsend_init(self, buf, offset, count, datatype, dest,
                   tag) -> Prequest:
        return Prequest(self._guard(capi.mpi_rsend_init, self._handle, buf,
                                    offset, count, datatype._handle, dest,
                                    tag))

    def Recv_init(self, buf, offset, count, datatype, source,
                  tag) -> Prequest:
        return Prequest(self._guard(capi.mpi_recv_init, self._handle, buf,
                                    offset, count, datatype._handle, source,
                                    tag))

    # ------------------------------------------------------------------
    # combined / probe
    # ------------------------------------------------------------------
    def Sendrecv(self, sendbuf, soffset, scount, sdtype, dest, stag,
                 recvbuf, roffset, rcount, rdtype, source,
                 rtag) -> Status:
        self._charge(scount, sdtype)
        self._charge(rcount, rdtype)
        return Status(self._guard(capi.mpi_sendrecv, self._handle,
                                  sendbuf, soffset, scount, sdtype._handle,
                                  dest, stag, recvbuf, roffset, rcount,
                                  rdtype._handle, source, rtag))

    def Sendrecv_replace(self, buf, offset, count, datatype, dest, stag,
                         source, rtag) -> Status:
        self._charge(count, datatype)
        return Status(self._guard(capi.mpi_sendrecv_replace, self._handle,
                                  buf, offset, count, datatype._handle,
                                  dest, stag, source, rtag))

    def Probe(self, source, tag) -> Status:
        """Blocking probe; the Status sizes a subsequent receive."""
        return Status(self._guard(capi.mpi_probe, self._handle, source,
                                  tag))

    def Iprobe(self, source, tag) -> Optional[Status]:
        """Non-blocking probe; None when no matching message is pending."""
        flag, cstatus = self._guard(capi.mpi_iprobe, self._handle, source,
                                    tag)
        return Status(cstatus) if flag else None

    # ------------------------------------------------------------------
    # pack / unpack (comm-scoped, as in MPI)
    # ------------------------------------------------------------------
    def Pack(self, inbuf, offset, incount, datatype, outbuf,
             position) -> int:
        """Pack elements into a byte buffer; returns the new position."""
        return self._guard(capi.mpi_pack, inbuf, offset, incount,
                           datatype._handle, outbuf, position)

    def Unpack(self, inbuf, position, outbuf, offset, outcount,
               datatype) -> int:
        """Inverse of :meth:`Pack`; returns the new position."""
        return self._guard(capi.mpi_unpack, inbuf, position, outbuf,
                           offset, outcount, datatype._handle)

    def Pack_size(self, incount, datatype) -> int:
        return self._guard(capi.mpi_pack_size, incount, datatype._handle)

    # ------------------------------------------------------------------
    # management
    # ------------------------------------------------------------------
    def Dup(self) -> "Comm":
        """Duplicate with fresh contexts and copied (callback-filtered)
        attributes."""
        return type(self)(self._guard(capi.mpi_comm_dup, self._handle))

    def Free(self) -> None:
        """Explicit free — one of the two classes whose destructor is not
        left to the garbage collector (paper §2.1)."""
        capi.mpi_comm_free(self._handle)
        self._handle = H.COMM_NULL

    def Abort(self, errorcode: int) -> None:
        capi.mpi_abort(self._handle, errorcode)

    # -- fault tolerance (ULFM-style extensions) ----------------------------
    def Revoke(self) -> None:
        """Revoke this communicator on every member (ULFM
        ``MPIX_Comm_revoke``): pending and future operations on it
        complete with ``ERR_REVOKED`` everywhere, reliably, even if
        this rank dies mid-broadcast."""
        self._guard(capi.mpi_comm_revoke, self._handle)

    def Is_revoked(self) -> bool:
        return self._guard(capi.mpi_comm_is_revoked, self._handle)

    def Shrink(self) -> "Comm":
        """A new communicator over the surviving members (ULFM
        ``MPIX_Comm_shrink``); works on a revoked communicator."""
        return type(self)(self._guard(capi.mpi_comm_shrink, self._handle))

    def Agree(self, flag: int) -> int:
        """Fault-tolerant agreement (ULFM ``MPIX_Comm_agree``): the
        bitwise AND of every surviving member's ``flag``, identical on
        all survivors even across failures during the call."""
        return self._guard(capi.mpi_comm_agree, self._handle, flag)

    # -- error handlers -----------------------------------------------------
    def Errhandler_set(self, errhandler: Errhandler) -> None:
        capi.mpi_errhandler_set(self._handle, errhandler._handle)

    def Errhandler_get(self) -> Errhandler:
        h = capi.mpi_errhandler_get(self._handle)
        return ERRORS_RETURN if h == H.ERRORS_RETURN else ERRORS_ARE_FATAL

    # -- attribute caching ----------------------------------------------------
    def Attr_put(self, keyval: int, value) -> None:
        self._guard(capi.mpi_attr_put, self._handle, keyval, value)

    def Attr_get(self, keyval: int):
        """Cached attribute value, or None (paper §2.1: a null result
        replaces C's flag output)."""
        return self._guard(capi.mpi_attr_get, self._handle, keyval)

    def Attr_delete(self, keyval: int) -> None:
        self._guard(capi.mpi_attr_delete, self._handle, keyval)

    def Topo_test(self) -> int:
        """``MPI.CART``, ``MPI.GRAPH`` or ``MPI.UNDEFINED``."""
        return self._guard(capi.mpi_topo_test, self._handle)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(handle={self._handle})"
