"""The ``MPI`` class: global services and constants (paper §2).

``MPI`` only has static members.  It acts as a module containing global
services such as initialization, and many global constants including the
default communicator ``COMM_WORLD``.

``COMM_WORLD`` can be a single shared object even though ranks are threads:
its *handle* is the same predefined integer in every rank, and the stub
layer resolves handles through the calling thread's rank binding — exactly
how a compile-time ``MPI_COMM_WORLD`` constant works across C processes.
"""

from __future__ import annotations

import numpy as np

from repro import errors as _errors
from repro.jni import capi, handles as H
from repro.mpijava import errhandler as _errh
from repro.mpijava.datatype import Datatype
from repro.mpijava.intracomm import Intracomm
from repro.mpijava.op import Op
from repro.mpijava import profiler as _profiler
from repro.runtime import consts as _consts


class _MPIMeta(type):
    """Forbid instantiation: MPI has only static members."""

    def __call__(cls, *args, **kwargs):
        raise TypeError("MPI is a static class and cannot be instantiated")


class MPI(metaclass=_MPIMeta):
    """Static global services, constants and predefined objects."""

    # ------------------------------------------------------------------
    # predefined communicators
    # ------------------------------------------------------------------
    COMM_WORLD = Intracomm(H.COMM_WORLD)
    COMM_SELF = Intracomm(H.COMM_SELF)
    COMM_NULL = None

    # ------------------------------------------------------------------
    # basic datatypes (paper Figure 2) + pair types + OBJECT extension
    # ------------------------------------------------------------------
    BYTE = Datatype(H.DT_BYTE, "MPI.BYTE")
    CHAR = Datatype(H.DT_CHAR, "MPI.CHAR")
    SHORT = Datatype(H.DT_SHORT, "MPI.SHORT")
    BOOLEAN = Datatype(H.DT_BOOLEAN, "MPI.BOOLEAN")
    INT = Datatype(H.DT_INT, "MPI.INT")
    LONG = Datatype(H.DT_LONG, "MPI.LONG")
    FLOAT = Datatype(H.DT_FLOAT, "MPI.FLOAT")
    DOUBLE = Datatype(H.DT_DOUBLE, "MPI.DOUBLE")
    PACKED = Datatype(H.DT_PACKED, "MPI.PACKED")
    SHORT2 = Datatype(H.DT_SHORT2, "MPI.SHORT2")
    INT2 = Datatype(H.DT_INT2, "MPI.INT2")
    LONG2 = Datatype(H.DT_LONG2, "MPI.LONG2")
    FLOAT2 = Datatype(H.DT_FLOAT2, "MPI.FLOAT2")
    DOUBLE2 = Datatype(H.DT_DOUBLE2, "MPI.DOUBLE2")
    #: the serialization extension of paper §2.2
    OBJECT = Datatype(H.DT_OBJECT, "MPI.OBJECT")

    # ------------------------------------------------------------------
    # reduction operations
    # ------------------------------------------------------------------
    MAX = Op(H.OP_MAX, name="MPI.MAX")
    MIN = Op(H.OP_MIN, name="MPI.MIN")
    SUM = Op(H.OP_SUM, name="MPI.SUM")
    PROD = Op(H.OP_PROD, name="MPI.PROD")
    LAND = Op(H.OP_LAND, name="MPI.LAND")
    LOR = Op(H.OP_LOR, name="MPI.LOR")
    LXOR = Op(H.OP_LXOR, name="MPI.LXOR")
    BAND = Op(H.OP_BAND, name="MPI.BAND")
    BOR = Op(H.OP_BOR, name="MPI.BOR")
    BXOR = Op(H.OP_BXOR, name="MPI.BXOR")
    MAXLOC = Op(H.OP_MAXLOC, name="MPI.MAXLOC")
    MINLOC = Op(H.OP_MINLOC, name="MPI.MINLOC")

    # ------------------------------------------------------------------
    # wildcard / sentinel constants
    # ------------------------------------------------------------------
    ANY_SOURCE = _consts.ANY_SOURCE
    ANY_TAG = _consts.ANY_TAG
    PROC_NULL = _consts.PROC_NULL
    UNDEFINED = _consts.UNDEFINED
    IDENT = _consts.IDENT
    CONGRUENT = _consts.CONGRUENT
    SIMILAR = _consts.SIMILAR
    UNEQUAL = _consts.UNEQUAL
    GRAPH = _consts.GRAPH
    CART = _consts.CART
    BSEND_OVERHEAD = _consts.BSEND_OVERHEAD
    TAG_UB = _consts.TAG_UB

    # error classes
    SUCCESS = _errors.SUCCESS
    ERR_BUFFER = _errors.ERR_BUFFER
    ERR_COUNT = _errors.ERR_COUNT
    ERR_TYPE = _errors.ERR_TYPE
    ERR_TAG = _errors.ERR_TAG
    ERR_COMM = _errors.ERR_COMM
    ERR_RANK = _errors.ERR_RANK
    ERR_REQUEST = _errors.ERR_REQUEST
    ERR_ROOT = _errors.ERR_ROOT
    ERR_GROUP = _errors.ERR_GROUP
    ERR_OP = _errors.ERR_OP
    ERR_TOPOLOGY = _errors.ERR_TOPOLOGY
    ERR_DIMS = _errors.ERR_DIMS
    ERR_ARG = _errors.ERR_ARG
    ERR_UNKNOWN = _errors.ERR_UNKNOWN
    ERR_TRUNCATE = _errors.ERR_TRUNCATE
    ERR_OTHER = _errors.ERR_OTHER
    ERR_INTERN = _errors.ERR_INTERN
    ERR_PENDING = _errors.ERR_PENDING
    ERR_IN_STATUS = _errors.ERR_IN_STATUS
    ERR_PROC_FAILED = _errors.ERR_PROC_FAILED
    ERR_REVOKED = _errors.ERR_REVOKED
    ERR_LASTCODE = _errors.ERR_LASTCODE

    # error handlers
    ERRORS_ARE_FATAL = _errh.ERRORS_ARE_FATAL
    ERRORS_RETURN = _errh.ERRORS_RETURN

    # predefined attribute keyvals
    TAG_UB_KEY = 1
    HOST_KEY = 2
    IO_KEY = 3
    WTIME_IS_GLOBAL_KEY = 4

    # ------------------------------------------------------------------
    # global services
    # ------------------------------------------------------------------
    @staticmethod
    def Init(args=None):
        """Initialize MPI for the calling rank; returns ``args``.

        Under :func:`repro.mpirun` the rank binding already exists; called
        stand-alone, a singleton one-rank job is created (like
        ``mpiexec -n 1``).
        """
        capi.mpi_init(args)
        return args

    @staticmethod
    def Initialized() -> bool:
        return capi.mpi_initialized()

    @staticmethod
    def Finalize() -> None:
        capi.mpi_finalize()

    @staticmethod
    def Finalized() -> bool:
        return capi.mpi_finalized()

    @staticmethod
    def Wtime() -> float:
        """Wall-clock (or virtual, in modeled mode) seconds."""
        return capi.mpi_wtime()

    @staticmethod
    def Wtick() -> float:
        return capi.mpi_wtick()

    @staticmethod
    def Get_processor_name() -> str:
        return capi.mpi_get_processor_name()

    @staticmethod
    def Get_version() -> tuple[int, int]:
        return capi.mpi_get_version()

    @staticmethod
    def Get_error_string(code: int) -> str:
        return capi.mpi_error_string(code)

    @staticmethod
    def Get_error_class(code: int) -> int:
        return capi.mpi_error_class(code)

    @staticmethod
    def Buffer_attach(nbytes: int) -> None:
        """Provide buffer space for buffered-mode sends."""
        capi.mpi_buffer_attach(nbytes)

    @staticmethod
    def Buffer_detach() -> int:
        """Drain and detach; returns the detached capacity in bytes."""
        return capi.mpi_buffer_detach()

    @staticmethod
    def Keyval_create(copy_fn=None, delete_fn=None, extra_state=None) \
            -> int:
        """Create an attribute key.  ``copy_fn(comm, keyval, extra, value)
        -> (flag, newvalue)`` controls propagation on ``Dup``."""
        return capi.mpi_keyval_create(copy_fn, delete_fn, extra_state)

    @staticmethod
    def Keyval_free(keyval: int) -> None:
        capi.mpi_keyval_free(keyval)

    @staticmethod
    def Pcontrol(level: int, *args) -> None:
        capi.mpi_pcontrol(level, *args)

    # ------------------------------------------------------------------
    # PMPI-style profiling (see repro.mpijava.profiler)
    # ------------------------------------------------------------------
    @staticmethod
    def attach_profiler(prof):
        """Interpose ``prof`` on every ``Comm`` entry point; returns it."""
        return _profiler.attach(prof)

    @staticmethod
    def detach_profiler(prof) -> None:
        _profiler.detach(prof)

    # ------------------------------------------------------------------
    # Java-char helpers (``"...".toCharArray()`` analogues)
    # ------------------------------------------------------------------
    @staticmethod
    def to_chars(text: str) -> np.ndarray:
        """A string as an ``MPI.CHAR`` buffer (UTF-16 code units)."""
        return np.frombuffer(text.encode("utf-16-le"), dtype=np.uint16) \
            .copy()

    @staticmethod
    def new_chars(length: int) -> np.ndarray:
        """An empty ``MPI.CHAR`` buffer of ``length`` characters."""
        return np.zeros(int(length), dtype=np.uint16)

    @staticmethod
    def from_chars(buf: np.ndarray) -> str:
        """Decode an ``MPI.CHAR`` buffer back into a string."""
        return np.asarray(buf, dtype=np.uint16).tobytes() \
            .decode("utf-16-le")
