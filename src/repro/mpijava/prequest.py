"""``Prequest`` — persistent communication request (MPI 1.1 §3.9).

Created by ``Comm.Send_init`` / ``Comm.Recv_init`` (and the buffered,
synchronous and ready variants); activated with ``Start`` or the static
``Startall``; each completion (Wait/Test) deactivates it so it can be
started again.
"""

from __future__ import annotations

from repro.jni import capi
from repro.mpijava.request import Request


class Prequest(Request):
    """A reusable request; survives Wait/Test, freed only explicitly."""

    _persistent = True

    def Start(self) -> None:
        """(Re)activate the operation (``MPI_Start``)."""
        capi.mpi_start(self._handle)

    @staticmethod
    def Startall(requests: list["Prequest"]) -> None:
        """``MPI_Startall`` — activate a whole array at once."""
        capi.mpi_startall([r._handle for r in requests])
