"""Per-rank opaque handle tables.

The MPI C API manipulates opaque objects through handles acquired from
constructor functions; each process owns its own handle space.  Our ranks
are threads, so each :class:`~repro.runtime.engine.RankRuntime` carries one
:class:`HandleTable` (lazily created).  Predefined handles are small fixed
integers identical on every rank, like the compile-time constants of a C
``mpi.h``.
"""

from __future__ import annotations

from repro.errors import MPIException, ERR_ARG
from repro.datatypes import primitives as P
from repro.runtime import reduce_ops as OPS
from repro.runtime.groups import EMPTY_GROUP

# --- predefined handle values (the "mpi.h constants") -------------------------
COMM_NULL = 0
COMM_WORLD = 1
COMM_SELF = 2

DATATYPE_NULL = 0
DT_BYTE, DT_CHAR, DT_SHORT, DT_BOOLEAN, DT_INT, DT_LONG = 1, 2, 3, 4, 5, 6
DT_FLOAT, DT_DOUBLE, DT_PACKED = 7, 8, 9
DT_SHORT2, DT_INT2, DT_LONG2, DT_FLOAT2, DT_DOUBLE2 = 10, 11, 12, 13, 14
DT_OBJECT = 15

OP_NULL = 0
(OP_MAX, OP_MIN, OP_SUM, OP_PROD, OP_LAND, OP_LOR, OP_LXOR, OP_BAND,
 OP_BOR, OP_BXOR, OP_MAXLOC, OP_MINLOC) = range(1, 13)

GROUP_NULL = 0
GROUP_EMPTY = 1

REQUEST_NULL = 0

ERRHANDLER_NULL = 0
ERRORS_ARE_FATAL = 1
ERRORS_RETURN = 2

_PREDEF_DATATYPES = {
    DT_BYTE: P.BYTE, DT_CHAR: P.CHAR, DT_SHORT: P.SHORT,
    DT_BOOLEAN: P.BOOLEAN, DT_INT: P.INT, DT_LONG: P.LONG,
    DT_FLOAT: P.FLOAT, DT_DOUBLE: P.DOUBLE, DT_PACKED: P.PACKED,
    DT_SHORT2: P.SHORT2, DT_INT2: P.INT2, DT_LONG2: P.LONG2,
    DT_FLOAT2: P.FLOAT2, DT_DOUBLE2: P.DOUBLE2, DT_OBJECT: P.OBJECT,
}

_PREDEF_OPS = {
    OP_MAX: OPS.MAX, OP_MIN: OPS.MIN, OP_SUM: OPS.SUM, OP_PROD: OPS.PROD,
    OP_LAND: OPS.LAND, OP_LOR: OPS.LOR, OP_LXOR: OPS.LXOR,
    OP_BAND: OPS.BAND, OP_BOR: OPS.BOR, OP_BXOR: OPS.BXOR,
    OP_MAXLOC: OPS.MAXLOC, OP_MINLOC: OPS.MINLOC,
}

_FIRST_DYNAMIC_HANDLE = 100


class HandleSpace:
    """One class of handles (communicators, datatypes, ...)."""

    def __init__(self, name: str, predefined: dict[int, object]):
        self.name = name
        self._by_handle: dict[int, object] = dict(predefined)
        self._handle_by_id: dict[int, int] = {
            id(obj): h for h, obj in predefined.items()}
        self._next = _FIRST_DYNAMIC_HANDLE

    def register(self, obj) -> int:
        """Intern an object; returns its (possibly existing) handle."""
        h = self._handle_by_id.get(id(obj))
        if h is not None:
            return h
        h = self._next
        self._next += 1
        self._by_handle[h] = obj
        self._handle_by_id[id(obj)] = h
        return h

    def lookup(self, handle: int):
        try:
            return self._by_handle[int(handle)]
        except (KeyError, TypeError, ValueError):
            raise MPIException(
                ERR_ARG, f"invalid or null {self.name} handle "
                         f"{handle!r}") from None

    def release(self, handle: int) -> None:
        obj = self._by_handle.pop(int(handle), None)
        if obj is not None:
            self._handle_by_id.pop(id(obj), None)

    def contains(self, handle: int) -> bool:
        return int(handle) in self._by_handle


class HandleTable:
    """All handle spaces for one rank."""

    def __init__(self, rt):
        self.rt = rt
        self.comms = HandleSpace("communicator", {
            COMM_WORLD: rt.comm_world, COMM_SELF: rt.comm_self})
        self.datatypes = HandleSpace("datatype", dict(_PREDEF_DATATYPES))
        self.ops = HandleSpace("operation", dict(_PREDEF_OPS))
        self.groups = HandleSpace("group", {GROUP_EMPTY: EMPTY_GROUP})
        self.requests = HandleSpace("request", {})
        self.errhandlers = HandleSpace("errhandler", {
            ERRORS_ARE_FATAL: "errors_are_fatal",
            ERRORS_RETURN: "errors_return"})


def tables_for(rt) -> HandleTable:
    """The handle table of a rank runtime (created on first use)."""
    table = getattr(rt, "_handle_table", None)
    if table is None:
        table = HandleTable(rt)
        rt._handle_table = table
    return table
