"""The "JNI C stub" layer (the paper's Figure 4 middle box).

A flat, procedural, handle-based API in the image of the MPI C binding:
opaque integer handles index per-rank tables of runtime objects, and every
function is free-standing (``mpi_send(comm, buf, offset, count, datatype,
dest, tag)``).  The object-oriented :mod:`repro.mpijava` layer reaches the
runtime **only** through these stubs, so the benchmark's ``-C`` columns
(direct stub calls) versus ``-J`` columns (OO API) measure a real layering
difference, just as the paper's C-vs-Java columns do.
"""

from repro.jni import capi
from repro.jni.handles import HandleTable, tables_for

__all__ = ["capi", "HandleTable", "tables_for"]
