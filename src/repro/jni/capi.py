"""The flat C-style MPI 1.1 API ("stubs").

Conventions mirror the C binding as closely as Python permits:

* all arguments that are opaque objects are integer handles;
* message buffers are (array, offset) pairs, as in the Java binding;
* output that C returns through pointer arguments comes back as return
  values (a tuple when there are several);
* errors raise :class:`~repro.errors.MPIException` (the OO layer maps this
  through the communicator's error handler, like ``MPI_Errhandler``).

The function set is the MPI 1.1 surface the paper's mpiJava wraps.
"""

from __future__ import annotations

from repro import errors
from repro.errors import MPIException, ERR_REQUEST
from repro.datatypes import derived as _derived
from repro.datatypes import packing as _packing
from repro.jni import handles as H
from repro.jni.handles import tables_for
from repro.runtime import requests as _requests
from repro.runtime import reduce_ops as _reduce_ops
from repro.runtime import topology as _topology
from repro.runtime.communicator import KEYVALS
from repro.runtime.consts import UNDEFINED
from repro.runtime.engine import current_runtime, try_current_runtime, \
    RankRuntime, Universe, bind_thread
from repro.runtime.envelope import (MODE_BUFFERED, MODE_READY,
                                    MODE_STANDARD, MODE_SYNCHRONOUS)
from repro.runtime.collective import (allgather as _allgather,
                                      alltoall as _alltoall,
                                      barrier as _barrier,
                                      bcast as _bcast,
                                      gather as _gather,
                                      reduce as _reduce,
                                      allreduce as _allreduce,
                                      reduce_scatter as _reduce_scatter,
                                      scan as _scan,
                                      scatter as _scatter)

VERSION = (1, 1)


class CStatus:
    """The information a ``MPI_Status`` carries (plus mpiJava's ``index``)."""

    __slots__ = ("source", "tag", "error", "count_elements", "cancelled",
                 "index", "is_object")

    def __init__(self, source=-1, tag=-1, error=0, count_elements=0,
                 cancelled=False, index=UNDEFINED, is_object=False):
        self.source = source
        self.tag = tag
        self.error = error
        self.count_elements = count_elements
        self.cancelled = cancelled
        self.index = index
        self.is_object = is_object

    def __repr__(self):  # pragma: no cover - cosmetic
        return (f"CStatus(source={self.source}, tag={self.tag}, "
                f"count={self.count_elements})")


def _ctx():
    rt = current_runtime()
    # fail fast on a poisoned job: every stub entry point observes a job
    # abort at its next MPI call, even ranks that never block (e.g. a
    # compute loop issuing only eager sends)
    rt.universe.check_abort()
    return rt, tables_for(rt)


def _status_from_request(req, comm=None) -> CStatus:
    comm = comm or getattr(req, "source_comm", None)
    source = req.status_source_world
    if comm is not None and source >= 0:
        source = comm.source_rank_of_world(source)
    dt = getattr(req, "recv_datatype", None)
    return CStatus(source=source, tag=req.status_tag, error=req.error,
                   count_elements=req.count_elements,
                   cancelled=req.cancelled,
                   is_object=bool(dt is not None and dt.base.is_object))


# =====================================================================
# environment management (MPI 1.1 chapter 7)
# =====================================================================

def mpi_init(args=None) -> None:
    """``MPI_Init``.  Outside :func:`repro.mpirun`, binds a singleton job
    (like ``mpiexec -n 1``) to the calling thread."""
    rt = try_current_runtime()
    if rt is None:
        universe = Universe(1, transport="inproc")
        rt = RankRuntime(universe, 0)
        bind_thread(rt)
        rt._owns_universe = True
    rt.init()


def mpi_initialized() -> bool:
    rt = try_current_runtime()
    return bool(rt is not None and rt.initialized)


def mpi_finalize() -> None:
    rt = current_runtime()
    rt.finalize()
    if getattr(rt, "_owns_universe", False):
        rt.universe.close()


def mpi_finalized() -> bool:
    rt = try_current_runtime()
    return bool(rt is not None and rt.finalized)


def mpi_abort(comm: int, errorcode: int) -> None:
    rt, t = _ctx()
    t.comms.lookup(comm)  # validate
    rt.universe.abort(rt.world_rank, errorcode)


def mpi_wtime() -> float:
    return current_runtime().wtime()


def mpi_wtick() -> float:
    return current_runtime().wtick()


def mpi_get_processor_name() -> str:
    return current_runtime().processor_name()


def mpi_get_version() -> tuple[int, int]:
    return VERSION


def mpi_error_string(code: int) -> str:
    return errors.error_string(code)


def mpi_error_class(code: int) -> int:
    return errors.error_class(code)


def mpi_pcontrol(level: int, *args) -> None:
    """Profiling control (MPI-1 §8.1): drive the attached profilers.

    Level 0 mutes attached :class:`~repro.mpijava.profiler.CommProfiler`
    instances, 1 unmutes them, 2 resets their accumulated state.  Other
    levels are implementation-defined and ignored, per the standard.
    """
    from repro.mpijava import profiler
    profiler.pcontrol(level)


def mpi_buffer_attach(nbytes: int) -> None:
    rt, _ = _ctx()
    rt.bsend_pool.attach(nbytes)


def mpi_buffer_detach() -> int:
    rt, _ = _ctx()
    return rt.bsend_pool.detach()


# =====================================================================
# point-to-point (MPI 1.1 chapter 3)
# =====================================================================

_MODE_BY_NAME = {"standard": MODE_STANDARD, "buffered": MODE_BUFFERED,
                 "synchronous": MODE_SYNCHRONOUS, "ready": MODE_READY}


def _send(comm, buf, offset, count, datatype, dest, tag, mode) -> None:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    dt = t.datatypes.lookup(datatype)
    c.send(buf, offset, count, dt, dest, tag, mode)


def mpi_send(comm, buf, offset, count, datatype, dest, tag) -> None:
    _send(comm, buf, offset, count, datatype, dest, tag, MODE_STANDARD)


def mpi_bsend(comm, buf, offset, count, datatype, dest, tag) -> None:
    _send(comm, buf, offset, count, datatype, dest, tag, MODE_BUFFERED)


def mpi_ssend(comm, buf, offset, count, datatype, dest, tag) -> None:
    _send(comm, buf, offset, count, datatype, dest, tag, MODE_SYNCHRONOUS)


def mpi_rsend(comm, buf, offset, count, datatype, dest, tag) -> None:
    _send(comm, buf, offset, count, datatype, dest, tag, MODE_READY)


def mpi_recv(comm, buf, offset, count, datatype, source, tag) -> CStatus:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    dt = t.datatypes.lookup(datatype)
    req = c.recv(buf, offset, count, dt, source, tag)
    return _status_from_request(req, c)


def _isend(comm, buf, offset, count, datatype, dest, tag, mode) -> int:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    dt = t.datatypes.lookup(datatype)
    req = c.isend(buf, offset, count, dt, dest, tag, mode)
    req.source_comm = c
    return t.requests.register(req)


def mpi_isend(comm, buf, offset, count, datatype, dest, tag) -> int:
    return _isend(comm, buf, offset, count, datatype, dest, tag,
                  MODE_STANDARD)


def mpi_ibsend(comm, buf, offset, count, datatype, dest, tag) -> int:
    return _isend(comm, buf, offset, count, datatype, dest, tag,
                  MODE_BUFFERED)


def mpi_issend(comm, buf, offset, count, datatype, dest, tag) -> int:
    return _isend(comm, buf, offset, count, datatype, dest, tag,
                  MODE_SYNCHRONOUS)


def mpi_irsend(comm, buf, offset, count, datatype, dest, tag) -> int:
    return _isend(comm, buf, offset, count, datatype, dest, tag, MODE_READY)


def mpi_irecv(comm, buf, offset, count, datatype, source, tag) -> int:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    dt = t.datatypes.lookup(datatype)
    req = c.irecv(buf, offset, count, dt, source, tag)
    return t.requests.register(req)


def _lookup_request(t, request: int) -> _requests.RequestImpl:
    if request == H.REQUEST_NULL:
        raise MPIException(ERR_REQUEST, "null request handle")
    return t.requests.lookup(request)


def mpi_wait(request: int) -> CStatus:
    rt, t = _ctx()
    req = _lookup_request(t, request)
    req.wait()
    status = _status_from_request(req)
    if req.persistent:
        req.deactivate()
    else:
        t.requests.release(request)
    return status


def mpi_test(request: int) -> tuple[bool, CStatus | None]:
    rt, t = _ctx()
    req = _lookup_request(t, request)
    if not req.test():
        return False, None
    status = _status_from_request(req)
    if req.persistent:
        req.deactivate()
    else:
        t.requests.release(request)
    return True, status


def _req_list(t, request_handles):
    return [None if h == H.REQUEST_NULL else t.requests.lookup(h)
            for h in request_handles]


def _finish_one(t, handles, reqs, i) -> CStatus:
    status = _status_from_request(reqs[i])
    status.index = i
    if reqs[i].persistent:
        reqs[i].deactivate()
    else:
        t.requests.release(handles[i])
    return status


def mpi_waitany(request_handles: list[int]) -> tuple[int, CStatus | None]:
    rt, t = _ctx()
    reqs = _req_list(t, request_handles)
    i = _requests.wait_any(reqs, rt.universe)
    if i < 0:
        return UNDEFINED, None
    return i, _finish_one(t, request_handles, reqs, i)


def mpi_testany(request_handles: list[int]) \
        -> tuple[bool, int, CStatus | None]:
    rt, t = _ctx()
    reqs = _req_list(t, request_handles)
    for i, r in enumerate(reqs):
        if r is not None and r.test():
            return True, i, _finish_one(t, request_handles, reqs, i)
    return False, UNDEFINED, None


def mpi_waitall(request_handles: list[int]) -> list[CStatus | None]:
    rt, t = _ctx()
    reqs = _req_list(t, request_handles)
    _requests.wait_all(reqs, rt.universe)
    return [None if r is None
            else _finish_one(t, request_handles, reqs, i)
            for i, r in enumerate(reqs)]


def mpi_testall(request_handles: list[int]) \
        -> tuple[bool, list[CStatus | None]]:
    rt, t = _ctx()
    reqs = _req_list(t, request_handles)
    if not _requests.test_all(reqs, rt.universe):
        return False, []
    return True, [None if r is None
                  else _finish_one(t, request_handles, reqs, i)
                  for i, r in enumerate(reqs)]


def mpi_waitsome(request_handles: list[int]) -> list[CStatus]:
    rt, t = _ctx()
    reqs = _req_list(t, request_handles)
    done = _requests.wait_some(reqs, rt.universe)
    return [_finish_one(t, request_handles, reqs, i) for i in done]


def mpi_testsome(request_handles: list[int]) -> list[CStatus]:
    rt, t = _ctx()
    reqs = _req_list(t, request_handles)
    done = _requests.test_some(reqs, rt.universe)
    return [_finish_one(t, request_handles, reqs, i) for i in done]


def mpi_probe(comm, source, tag) -> CStatus:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    info = c.probe(source, tag)
    return CStatus(source=info.source, tag=info.tag,
                   count_elements=info.nelems, is_object=info.is_object)


def mpi_iprobe(comm, source, tag) -> tuple[bool, CStatus | None]:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    info = c.iprobe(source, tag)
    if info is None:
        return False, None
    return True, CStatus(source=info.source, tag=info.tag,
                         count_elements=info.nelems,
                         is_object=info.is_object)


def mpi_cancel(request: int) -> None:
    rt, t = _ctx()
    req = _lookup_request(t, request)
    comm = getattr(req, "source_comm", None)
    if comm is not None:
        comm.cancel(req)
    elif req.kind == _requests.RequestImpl.KIND_RECV:
        rt.mailbox.cancel_recv(req)


def mpi_test_cancelled(status: CStatus) -> bool:
    return bool(status.cancelled)


def mpi_request_free(request: int) -> None:
    rt, t = _ctx()
    _lookup_request(t, request)
    t.requests.release(request)


def mpi_get_count(status: CStatus, datatype: int) -> int:
    rt, t = _ctx()
    dt = t.datatypes.lookup(datatype)
    n = status.count_elements
    if dt.base.is_object or dt.size_elems == 1:
        return n
    full, part = divmod(n, dt.size_elems)
    return UNDEFINED if part else full


def mpi_get_elements(status: CStatus, datatype: int) -> int:
    t = _ctx()[1]
    t.datatypes.lookup(datatype)
    return status.count_elements


def _send_init(comm, buf, offset, count, datatype, dest, tag, mode) -> int:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    dt = t.datatypes.lookup(datatype)
    req = c.send_init(buf, offset, count, dt, dest, tag, mode)
    req.source_comm = c
    return t.requests.register(req)


def mpi_send_init(comm, buf, offset, count, datatype, dest, tag) -> int:
    return _send_init(comm, buf, offset, count, datatype, dest, tag,
                      MODE_STANDARD)


def mpi_bsend_init(comm, buf, offset, count, datatype, dest, tag) -> int:
    return _send_init(comm, buf, offset, count, datatype, dest, tag,
                      MODE_BUFFERED)


def mpi_ssend_init(comm, buf, offset, count, datatype, dest, tag) -> int:
    return _send_init(comm, buf, offset, count, datatype, dest, tag,
                      MODE_SYNCHRONOUS)


def mpi_rsend_init(comm, buf, offset, count, datatype, dest, tag) -> int:
    return _send_init(comm, buf, offset, count, datatype, dest, tag,
                      MODE_READY)


def mpi_recv_init(comm, buf, offset, count, datatype, source, tag) -> int:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    dt = t.datatypes.lookup(datatype)
    req = c.recv_init(buf, offset, count, dt, source, tag)
    req.source_comm = c
    return t.requests.register(req)


def mpi_start(request: int) -> None:
    rt, t = _ctx()
    _lookup_request(t, request).start()


def mpi_startall(request_handles: list[int]) -> None:
    rt, t = _ctx()
    for h in request_handles:
        _lookup_request(t, h).start()


def mpi_sendrecv(comm, sendbuf, soffset, scount, sdtype, dest, stag,
                 recvbuf, roffset, rcount, rdtype, source, rtag) -> CStatus:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    req = c.sendrecv(sendbuf, soffset, scount, t.datatypes.lookup(sdtype),
                     dest, stag, recvbuf, roffset, rcount,
                     t.datatypes.lookup(rdtype), source, rtag)
    return _status_from_request(req, c)


def mpi_sendrecv_replace(comm, buf, offset, count, datatype, dest, stag,
                         source, rtag) -> CStatus:
    rt, t = _ctx()
    c = t.comms.lookup(comm)
    req = c.sendrecv_replace(buf, offset, count,
                             t.datatypes.lookup(datatype), dest, stag,
                             source, rtag)
    return _status_from_request(req, c)


# =====================================================================
# collectives (MPI 1.1 chapter 4)
# =====================================================================

def mpi_barrier(comm) -> None:
    rt, t = _ctx()
    _barrier.barrier(t.comms.lookup(comm))


def mpi_bcast(comm, buf, offset, count, datatype, root) -> None:
    rt, t = _ctx()
    _bcast.bcast(t.comms.lookup(comm), buf, offset, count,
                 t.datatypes.lookup(datatype), root)


def mpi_gather(comm, sendbuf, soffset, scount, sdtype,
               recvbuf, roffset, rcount, rdtype, root) -> None:
    rt, t = _ctx()
    _gather.gather(t.comms.lookup(comm), sendbuf, soffset, scount,
                   t.datatypes.lookup(sdtype), recvbuf, roffset, rcount,
                   t.datatypes.lookup(rdtype), root)


def mpi_gatherv(comm, sendbuf, soffset, scount, sdtype,
                recvbuf, roffset, rcounts, displs, rdtype, root) -> None:
    rt, t = _ctx()
    _gather.gatherv(t.comms.lookup(comm), sendbuf, soffset, scount,
                    t.datatypes.lookup(sdtype), recvbuf, roffset, rcounts,
                    displs, t.datatypes.lookup(rdtype), root)


def mpi_scatter(comm, sendbuf, soffset, scount, sdtype,
                recvbuf, roffset, rcount, rdtype, root) -> None:
    rt, t = _ctx()
    _scatter.scatter(t.comms.lookup(comm), sendbuf, soffset, scount,
                     t.datatypes.lookup(sdtype), recvbuf, roffset, rcount,
                     t.datatypes.lookup(rdtype), root)


def mpi_scatterv(comm, sendbuf, soffset, scounts, displs, sdtype,
                 recvbuf, roffset, rcount, rdtype, root) -> None:
    rt, t = _ctx()
    _scatter.scatterv(t.comms.lookup(comm), sendbuf, soffset, scounts,
                      displs, t.datatypes.lookup(sdtype), recvbuf, roffset,
                      rcount, t.datatypes.lookup(rdtype), root)


def mpi_allgather(comm, sendbuf, soffset, scount, sdtype,
                  recvbuf, roffset, rcount, rdtype) -> None:
    rt, t = _ctx()
    _allgather.allgather(t.comms.lookup(comm), sendbuf, soffset, scount,
                         t.datatypes.lookup(sdtype), recvbuf, roffset,
                         rcount, t.datatypes.lookup(rdtype))


def mpi_allgatherv(comm, sendbuf, soffset, scount, sdtype,
                   recvbuf, roffset, rcounts, displs, rdtype) -> None:
    rt, t = _ctx()
    _allgather.allgatherv(t.comms.lookup(comm), sendbuf, soffset, scount,
                          t.datatypes.lookup(sdtype), recvbuf, roffset,
                          rcounts, displs, t.datatypes.lookup(rdtype))


def mpi_alltoall(comm, sendbuf, soffset, scount, sdtype,
                 recvbuf, roffset, rcount, rdtype) -> None:
    rt, t = _ctx()
    _alltoall.alltoall(t.comms.lookup(comm), sendbuf, soffset, scount,
                       t.datatypes.lookup(sdtype), recvbuf, roffset, rcount,
                       t.datatypes.lookup(rdtype))


def mpi_alltoallv(comm, sendbuf, soffset, scounts, sdispls, sdtype,
                  recvbuf, roffset, rcounts, rdispls, rdtype) -> None:
    rt, t = _ctx()
    _alltoall.alltoallv(t.comms.lookup(comm), sendbuf, soffset, scounts,
                        sdispls, t.datatypes.lookup(sdtype), recvbuf,
                        roffset, rcounts, rdispls,
                        t.datatypes.lookup(rdtype))


def mpi_reduce(comm, sendbuf, soffset, recvbuf, roffset, count, datatype,
               op, root) -> None:
    rt, t = _ctx()
    _reduce.reduce(t.comms.lookup(comm), sendbuf, soffset, recvbuf, roffset,
                   count, t.datatypes.lookup(datatype), t.ops.lookup(op),
                   root)


def mpi_allreduce(comm, sendbuf, soffset, recvbuf, roffset, count, datatype,
                  op) -> None:
    rt, t = _ctx()
    _allreduce.allreduce(t.comms.lookup(comm), sendbuf, soffset, recvbuf,
                         roffset, count, t.datatypes.lookup(datatype),
                         t.ops.lookup(op))


def mpi_reduce_scatter(comm, sendbuf, soffset, recvbuf, roffset, recvcounts,
                       datatype, op) -> None:
    rt, t = _ctx()
    _reduce_scatter.reduce_scatter(t.comms.lookup(comm), sendbuf, soffset,
                                   recvbuf, roffset, recvcounts,
                                   t.datatypes.lookup(datatype),
                                   t.ops.lookup(op))


def mpi_scan(comm, sendbuf, soffset, recvbuf, roffset, count, datatype,
             op) -> None:
    rt, t = _ctx()
    _scan.scan(t.comms.lookup(comm), sendbuf, soffset, recvbuf, roffset,
               count, t.datatypes.lookup(datatype), t.ops.lookup(op))


# -- nonblocking collectives (schedule-based, libNBC-style) --------------------

def mpi_ibarrier(comm) -> int:
    rt, t = _ctx()
    return t.requests.register(_barrier.ibarrier(t.comms.lookup(comm)))


def mpi_ibcast(comm, buf, offset, count, datatype, root) -> int:
    rt, t = _ctx()
    req = _bcast.ibcast(t.comms.lookup(comm), buf, offset, count,
                        t.datatypes.lookup(datatype), root)
    return t.requests.register(req)


def mpi_igather(comm, sendbuf, soffset, scount, sdtype,
                recvbuf, roffset, rcount, rdtype, root) -> int:
    rt, t = _ctx()
    req = _gather.igather(t.comms.lookup(comm), sendbuf, soffset, scount,
                          t.datatypes.lookup(sdtype), recvbuf, roffset,
                          rcount, t.datatypes.lookup(rdtype), root)
    return t.requests.register(req)


def mpi_iscatter(comm, sendbuf, soffset, scount, sdtype,
                 recvbuf, roffset, rcount, rdtype, root) -> int:
    rt, t = _ctx()
    req = _scatter.iscatter(t.comms.lookup(comm), sendbuf, soffset, scount,
                            t.datatypes.lookup(sdtype), recvbuf, roffset,
                            rcount, t.datatypes.lookup(rdtype), root)
    return t.requests.register(req)


def mpi_iallgather(comm, sendbuf, soffset, scount, sdtype,
                   recvbuf, roffset, rcount, rdtype) -> int:
    rt, t = _ctx()
    req = _allgather.iallgather(t.comms.lookup(comm), sendbuf, soffset,
                                scount, t.datatypes.lookup(sdtype),
                                recvbuf, roffset, rcount,
                                t.datatypes.lookup(rdtype))
    return t.requests.register(req)


def mpi_ialltoall(comm, sendbuf, soffset, scount, sdtype,
                  recvbuf, roffset, rcount, rdtype) -> int:
    rt, t = _ctx()
    req = _alltoall.ialltoall(t.comms.lookup(comm), sendbuf, soffset,
                              scount, t.datatypes.lookup(sdtype), recvbuf,
                              roffset, rcount, t.datatypes.lookup(rdtype))
    return t.requests.register(req)


def mpi_ireduce(comm, sendbuf, soffset, recvbuf, roffset, count, datatype,
                op, root) -> int:
    rt, t = _ctx()
    req = _reduce.ireduce(t.comms.lookup(comm), sendbuf, soffset, recvbuf,
                          roffset, count, t.datatypes.lookup(datatype),
                          t.ops.lookup(op), root)
    return t.requests.register(req)


def mpi_iallreduce(comm, sendbuf, soffset, recvbuf, roffset, count,
                   datatype, op) -> int:
    rt, t = _ctx()
    req = _allreduce.iallreduce(t.comms.lookup(comm), sendbuf, soffset,
                                recvbuf, roffset, count,
                                t.datatypes.lookup(datatype),
                                t.ops.lookup(op))
    return t.requests.register(req)


def mpi_op_create(function, commute: bool) -> int:
    rt, t = _ctx()
    return t.ops.register(_reduce_ops.make_user_op(function, commute))


def mpi_op_free(op: int) -> None:
    rt, t = _ctx()
    t.ops.lookup(op).free()
    t.ops.release(op)


# =====================================================================
# groups, communicators (MPI 1.1 chapter 5)
# =====================================================================

def mpi_comm_size(comm) -> int:
    return _ctx()[1].comms.lookup(comm).size


def mpi_comm_rank(comm) -> int:
    return _ctx()[1].comms.lookup(comm).rank


def mpi_comm_compare(comm1, comm2) -> int:
    t = _ctx()[1]
    return t.comms.lookup(comm1).compare(t.comms.lookup(comm2))


def mpi_comm_group(comm) -> int:
    t = _ctx()[1]
    return t.groups.register(t.comms.lookup(comm).group)


def mpi_comm_remote_group(comm) -> int:
    t = _ctx()[1]
    c = t.comms.lookup(comm)
    c._require_inter()
    return t.groups.register(c.remote_group)


def mpi_comm_remote_size(comm) -> int:
    return _ctx()[1].comms.lookup(comm).remote_size()


def mpi_comm_test_inter(comm) -> bool:
    return _ctx()[1].comms.lookup(comm).is_inter


def mpi_comm_dup(comm) -> int:
    t = _ctx()[1]
    return t.comms.register(t.comms.lookup(comm).dup())


def mpi_comm_create(comm, group) -> int:
    t = _ctx()[1]
    out = t.comms.lookup(comm).create(t.groups.lookup(group))
    return H.COMM_NULL if out is None else t.comms.register(out)


def mpi_comm_split(comm, color, key) -> int:
    t = _ctx()[1]
    out = t.comms.lookup(comm).split(color, key)
    return H.COMM_NULL if out is None else t.comms.register(out)


def mpi_comm_free(comm) -> None:
    t = _ctx()[1]
    t.comms.lookup(comm).free()
    t.comms.release(comm)


# -- fault tolerance (ULFM-style, MPI 4.x §11.1 spirit) -----------------------

def mpi_comm_revoke(comm) -> None:
    """``MPIX_Comm_revoke``: poison this communicator (and only it) on
    every member, reliably, without requiring collective participation."""
    _ctx()[1].comms.lookup(comm).revoke()


def mpi_comm_is_revoked(comm) -> bool:
    return _ctx()[1].comms.lookup(comm).is_revoked()


def mpi_comm_shrink(comm) -> int:
    """``MPIX_Comm_shrink``: survivors agree on a new communicator
    excluding every failed rank."""
    t = _ctx()[1]
    return t.comms.register(t.comms.lookup(comm).shrink())


def mpi_comm_agree(comm, flag: int) -> int:
    """``MPIX_Comm_agree``: fault-tolerant agreement — the bitwise AND
    of every live member's contribution, identical on all survivors."""
    return _ctx()[1].comms.lookup(comm).agree(flag)


def mpi_intercomm_create(local_comm, local_leader, peer_comm,
                         remote_leader, tag) -> int:
    t = _ctx()[1]
    out = t.comms.lookup(local_comm).create_intercomm(
        local_leader, t.comms.lookup(peer_comm), remote_leader, tag)
    return t.comms.register(out)


def mpi_intercomm_merge(intercomm, high: bool) -> int:
    t = _ctx()[1]
    return t.comms.register(t.comms.lookup(intercomm).merge(high))


def mpi_keyval_create(copy_fn, delete_fn, extra_state) -> int:
    return KEYVALS.create(copy_fn, delete_fn, extra_state)


def mpi_keyval_free(keyval: int) -> None:
    KEYVALS.free(keyval)


def mpi_attr_put(comm, keyval, value) -> None:
    _ctx()[1].comms.lookup(comm).attr_put(keyval, value)


def mpi_attr_get(comm, keyval):
    return _ctx()[1].comms.lookup(comm).attr_get(keyval)


def mpi_attr_delete(comm, keyval) -> None:
    _ctx()[1].comms.lookup(comm).attr_delete(keyval)


def mpi_errhandler_set(comm, errhandler) -> None:
    t = _ctx()[1]
    t.errhandlers.lookup(errhandler)  # validate
    t.comms.lookup(comm).errhandler_handle = errhandler


def mpi_errhandler_get(comm) -> int:
    # no _ctx(): the OO layer's _guard consults this while an exception is
    # already unwinding, so it must not raise on a poisoned job — a local
    # error under ERRORS_RETURN still surfaces as itself, not as the abort
    rt = current_runtime()
    return getattr(tables_for(rt).comms.lookup(comm), "errhandler_handle",
                   H.ERRORS_ARE_FATAL)


def mpi_request_errhandler(request: int) -> int:
    """Error handler of the communicator a request belongs to.

    The OO layer routes Wait/Test failures through this, mirroring MPI's
    rule that a request inherits its communicator's error handler.  Never
    raises and skips the poisoned-job check: it runs while an exception is
    already unwinding.
    """
    rt = try_current_runtime()
    if rt is None or request == H.REQUEST_NULL:
        return H.ERRORS_ARE_FATAL
    try:
        req = tables_for(rt).requests.lookup(request)
    except MPIException:
        return H.ERRORS_ARE_FATAL
    comm = getattr(req, "comm", None) or getattr(req, "source_comm", None)
    return getattr(comm, "errhandler_handle", H.ERRORS_ARE_FATAL)


# -- groups -------------------------------------------------------------------

def mpi_group_size(group) -> int:
    return _ctx()[1].groups.lookup(group).size


def mpi_group_rank(group) -> int:
    rt, t = _ctx()
    return t.groups.lookup(group).rank_of_world(rt.world_rank)


def mpi_group_translate_ranks(group1, ranks, group2) -> list[int]:
    t = _ctx()[1]
    return t.groups.lookup(group1).translate_ranks(
        ranks, t.groups.lookup(group2))


def mpi_group_compare(group1, group2) -> int:
    t = _ctx()[1]
    return t.groups.lookup(group1).compare(t.groups.lookup(group2))


def _group_binop(group1, group2, name) -> int:
    t = _ctx()[1]
    g = getattr(t.groups.lookup(group1), name)(t.groups.lookup(group2))
    return t.groups.register(g)


def mpi_group_union(group1, group2) -> int:
    return _group_binop(group1, group2, "union")


def mpi_group_intersection(group1, group2) -> int:
    return _group_binop(group1, group2, "intersection")


def mpi_group_difference(group1, group2) -> int:
    return _group_binop(group1, group2, "difference")


def mpi_group_incl(group, ranks) -> int:
    t = _ctx()[1]
    return t.groups.register(t.groups.lookup(group).incl(ranks))


def mpi_group_excl(group, ranks) -> int:
    t = _ctx()[1]
    return t.groups.register(t.groups.lookup(group).excl(ranks))


def mpi_group_range_incl(group, ranges) -> int:
    t = _ctx()[1]
    return t.groups.register(t.groups.lookup(group).range_incl(ranges))


def mpi_group_range_excl(group, ranges) -> int:
    t = _ctx()[1]
    return t.groups.register(t.groups.lookup(group).range_excl(ranges))


def mpi_group_free(group) -> None:
    _ctx()[1].groups.release(group)


# =====================================================================
# virtual topologies (MPI 1.1 chapter 6)
# =====================================================================

def mpi_dims_create(nnodes: int, dims: list[int]) -> list[int]:
    return _topology.dims_create(nnodes, dims)


def mpi_cart_create(comm, dims, periods, reorder) -> int:
    t = _ctx()[1]
    out = t.comms.lookup(comm).cart_create(dims, periods, reorder)
    return H.COMM_NULL if out is None else t.comms.register(out)


def mpi_graph_create(comm, index, edges, reorder) -> int:
    t = _ctx()[1]
    out = t.comms.lookup(comm).graph_create(index, edges, reorder)
    return H.COMM_NULL if out is None else t.comms.register(out)


def mpi_topo_test(comm) -> int:
    return _ctx()[1].comms.lookup(comm).topo_test()


def mpi_cartdim_get(comm) -> int:
    return _ctx()[1].comms.lookup(comm)._require_cart().ndims


def mpi_cart_get(comm) -> tuple[list[int], list[bool], list[int]]:
    c = _ctx()[1].comms.lookup(comm)
    topo = c._require_cart()
    return (list(topo.dims), list(topo.periods),
            topo.coords_of(c.rank))


def mpi_cart_rank(comm, coords) -> int:
    return _ctx()[1].comms.lookup(comm)._require_cart().rank_of(coords)


def mpi_cart_coords(comm, rank) -> list[int]:
    return _ctx()[1].comms.lookup(comm)._require_cart().coords_of(rank)


def mpi_cart_shift(comm, direction, disp) -> tuple[int, int]:
    c = _ctx()[1].comms.lookup(comm)
    return c._require_cart().shift(c.rank, direction, disp)


def mpi_cart_sub(comm, remain_dims) -> int:
    t = _ctx()[1]
    out = t.comms.lookup(comm).cart_sub(remain_dims)
    return H.COMM_NULL if out is None else t.comms.register(out)


def mpi_cart_map(comm, dims, periods) -> int:
    c = _ctx()[1].comms.lookup(comm)
    topo = _topology.CartTopology(dims, periods)
    return c.rank if c.rank < topo.size else UNDEFINED


def mpi_graph_map(comm, index, edges) -> int:
    c = _ctx()[1].comms.lookup(comm)
    topo = _topology.GraphTopology(index, edges)
    return c.rank if c.rank < topo.nnodes else UNDEFINED


def mpi_graphdims_get(comm) -> tuple[int, int]:
    topo = _ctx()[1].comms.lookup(comm)._require_graph()
    return topo.nnodes, topo.nedges


def mpi_graph_get(comm) -> tuple[list[int], list[int]]:
    topo = _ctx()[1].comms.lookup(comm)._require_graph()
    return list(topo.index), list(topo.edges)


def mpi_graph_neighbors_count(comm, rank) -> int:
    return _ctx()[1].comms.lookup(comm)._require_graph() \
        .neighbours_count(rank)


def mpi_graph_neighbors(comm, rank) -> list[int]:
    return _ctx()[1].comms.lookup(comm)._require_graph().neighbours(rank)


# =====================================================================
# derived datatypes (MPI 1.1 §3.12)
# =====================================================================

def mpi_type_contiguous(count, oldtype) -> int:
    t = _ctx()[1]
    return t.datatypes.register(
        _derived.contiguous(count, t.datatypes.lookup(oldtype)))


def mpi_type_vector(count, blocklength, stride, oldtype) -> int:
    t = _ctx()[1]
    return t.datatypes.register(
        _derived.vector(count, blocklength, stride,
                        t.datatypes.lookup(oldtype)))


def mpi_type_hvector(count, blocklength, stride_bytes, oldtype) -> int:
    t = _ctx()[1]
    return t.datatypes.register(
        _derived.hvector(count, blocklength, stride_bytes,
                         t.datatypes.lookup(oldtype)))


def mpi_type_indexed(blocklengths, displacements, oldtype) -> int:
    t = _ctx()[1]
    return t.datatypes.register(
        _derived.indexed(blocklengths, displacements,
                         t.datatypes.lookup(oldtype)))


def mpi_type_hindexed(blocklengths, byte_displacements, oldtype) -> int:
    t = _ctx()[1]
    return t.datatypes.register(
        _derived.hindexed(blocklengths, byte_displacements,
                          t.datatypes.lookup(oldtype)))


def mpi_type_struct(blocklengths, byte_displacements, types) -> int:
    t = _ctx()[1]
    return t.datatypes.register(
        _derived.struct(blocklengths, byte_displacements,
                        [t.datatypes.lookup(h) for h in types]))


def mpi_type_commit(datatype) -> None:
    _ctx()[1].datatypes.lookup(datatype).commit()


def mpi_type_free(datatype) -> None:
    t = _ctx()[1]
    dt = t.datatypes.lookup(datatype)
    dt.free()
    t.datatypes.release(datatype)


def mpi_type_extent(datatype) -> int:
    return _ctx()[1].datatypes.lookup(datatype).extent_bytes()


def mpi_type_size(datatype) -> int:
    return _ctx()[1].datatypes.lookup(datatype).size_bytes()


def mpi_type_lb(datatype) -> int:
    return _ctx()[1].datatypes.lookup(datatype).lb_bytes()


def mpi_type_ub(datatype) -> int:
    return _ctx()[1].datatypes.lookup(datatype).ub_bytes()


def mpi_pack_size(incount, datatype) -> int:
    return _packing.pack_size(incount, _ctx()[1].datatypes.lookup(datatype))


def mpi_pack(inbuf, offset, incount, datatype, outbuf, position) -> int:
    return _packing.pack(inbuf, offset, incount,
                         _ctx()[1].datatypes.lookup(datatype), outbuf,
                         position)


def mpi_unpack(inbuf, position, outbuf, offset, outcount, datatype) -> int:
    return _packing.unpack(inbuf, position, outbuf, offset, outcount,
                           _ctx()[1].datatypes.lookup(datatype))
