"""Predefined basic datatypes (the paper's Figure 2) plus pair types.

======================  ==============  =========================
MPI datatype            Java datatype   our NumPy dtype
======================  ==============  =========================
``MPI.BYTE``            ``byte``        ``int8``
``MPI.CHAR``            ``char``        ``uint16`` (UTF-16 unit)
``MPI.SHORT``           ``short``       ``int16``
``MPI.BOOLEAN``         ``boolean``     ``bool_``
``MPI.INT``             ``int``         ``int32``
``MPI.LONG``            ``long``        ``int64``
``MPI.FLOAT``           ``float``       ``float32``
``MPI.DOUBLE``          ``double``      ``float64``
``MPI.PACKED``          —               ``uint8``
======================  ==============  =========================

``MPI.OBJECT`` is the serialization extension the paper proposes in §2.2:
buffers may be arrays of arbitrary serializable Python objects, pickled in
the send wrapper and unpickled at the destination.

The ``*2`` pair types (``SHORT2`` … ``DOUBLE2``), as in real mpiJava, serve
``MINLOC``/``MAXLOC`` reductions: buffers hold ``2*count`` interleaved
(value, index) elements of the base type.
"""

from __future__ import annotations

import numpy as np

from repro.datatypes.base import DatatypeImpl, PrimitiveInfo

__all__ = [
    "BYTE", "CHAR", "SHORT", "BOOLEAN", "INT", "LONG", "FLOAT", "DOUBLE",
    "PACKED", "OBJECT", "SHORT2", "INT2", "LONG2", "FLOAT2", "DOUBLE2",
    "BASIC_TYPES", "PAIR_TYPES", "ALL_PREDEFINED", "numpy_dtype_for",
    "primitive_for_dtype",
]


def _prim(name: str, np_dtype) -> DatatypeImpl:
    dt = np.dtype(np_dtype)
    info = PrimitiveInfo(name=name, np_dtype=dt, itemsize=dt.itemsize)
    return DatatypeImpl(info, disp=[0], extent_elems=1, name=name,
                        committed=True)


def _pair(name: str, of: DatatypeImpl) -> DatatypeImpl:
    return DatatypeImpl(of.base, disp=[0, 1], extent_elems=2, name=name,
                        committed=True, is_pair=True)


BYTE = _prim("MPI.BYTE", np.int8)
#: Java ``char`` is a 16-bit UTF-16 code unit.
CHAR = _prim("MPI.CHAR", np.uint16)
SHORT = _prim("MPI.SHORT", np.int16)
BOOLEAN = _prim("MPI.BOOLEAN", np.bool_)
INT = _prim("MPI.INT", np.int32)
LONG = _prim("MPI.LONG", np.int64)
FLOAT = _prim("MPI.FLOAT", np.float32)
DOUBLE = _prim("MPI.DOUBLE", np.float64)
PACKED = _prim("MPI.PACKED", np.uint8)

_OBJECT_INFO = PrimitiveInfo(name="MPI.OBJECT", np_dtype=None, itemsize=0,
                             is_object=True)
OBJECT = DatatypeImpl(_OBJECT_INFO, disp=[0], extent_elems=1,
                      name="MPI.OBJECT", committed=True)

SHORT2 = _pair("MPI.SHORT2", SHORT)
INT2 = _pair("MPI.INT2", INT)
LONG2 = _pair("MPI.LONG2", LONG)
FLOAT2 = _pair("MPI.FLOAT2", FLOAT)
DOUBLE2 = _pair("MPI.DOUBLE2", DOUBLE)

BASIC_TYPES = (BYTE, CHAR, SHORT, BOOLEAN, INT, LONG, FLOAT, DOUBLE, PACKED)
PAIR_TYPES = (SHORT2, INT2, LONG2, FLOAT2, DOUBLE2)
ALL_PREDEFINED = BASIC_TYPES + PAIR_TYPES + (OBJECT,)

_BY_DTYPE = {t.base.np_dtype: t for t in BASIC_TYPES}


def numpy_dtype_for(datatype: DatatypeImpl):
    """NumPy dtype of the base element type (None for OBJECT)."""
    return datatype.base.np_dtype


def primitive_for_dtype(dtype) -> DatatypeImpl:
    """Map a NumPy dtype to the matching predefined basic type.

    Used for automatic datatype discovery in convenience entry points, the
    way mpi4py infers types from buffers.
    """
    dt = np.dtype(dtype)
    try:
        return _BY_DTYPE[dt]
    except KeyError:
        raise KeyError(f"no predefined MPI basic type for dtype {dt}") \
            from None
