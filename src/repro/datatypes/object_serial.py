"""``MPI.OBJECT`` serialization (the paper's §2.2 proposed extension).

    "A message buffer can then be an array of any serializable Java
     objects.  The objects are serialized automatically in the wrapper of
     send operations, and unserialized at their destination."

We use :mod:`pickle` as the Python analogue of Java object serialization.
The wire format is a single pickled list of the ``count`` objects starting
at the caller's ``offset``.
"""

from __future__ import annotations

import pickle

__all__ = ["serialize_objects", "deserialize_objects"]

#: Pickle protocol pinned for deterministic wire sizes in benchmarks.
PROTOCOL = 4


def serialize_objects(objects: list) -> bytes:
    """Serialize a list of Python objects into a byte string."""
    return pickle.dumps(list(objects), protocol=PROTOCOL)


def deserialize_objects(blob: bytes) -> list:
    """Inverse of :func:`serialize_objects`."""
    out = pickle.loads(blob)
    if not isinstance(out, list):
        raise TypeError("corrupt MPI.OBJECT payload: expected a list")
    return out
