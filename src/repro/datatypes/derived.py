"""Derived-datatype constructors (MPI 1.1 §3.12, mpiJava §2.2).

All constructors of standard MPI are provided, with the paper's documented
limitation: ``struct`` requires every combined type to share one primitive
base type (which must agree with the buffer's element type), and there is no
``MPI_BOTTOM`` / ``MPI_Address`` — absolute addresses do not fit the
pointer-free array model.

Displacement conventions follow MPI:

* ``vector`` / ``indexed`` displacements and strides are in units of the
  *old type's extent*;
* ``hvector`` / ``hindexed`` / ``struct`` displacements are in **bytes**,
  validated to land on base-element boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MPIException, ERR_ARG, ERR_COUNT, ERR_TYPE
from repro.datatypes.base import (
    DatatypeImpl, check_byte_displacement, check_same_base,
)

__all__ = ["contiguous", "vector", "hvector", "indexed", "hindexed", "struct"]


def _check_old(old: DatatypeImpl, context: str) -> None:
    old._check_alive()
    if old.base.is_object:
        raise MPIException(
            ERR_TYPE, f"{context}: derived types over MPI.OBJECT are not "
                      f"supported; object buffers are already structured")


def _check_count(value: int, what: str, context: str) -> int:
    value = int(value)
    if value < 0:
        raise MPIException(ERR_COUNT, f"{context}: negative {what} {value}")
    return value


def contiguous(count: int, old: DatatypeImpl) -> DatatypeImpl:
    """``MPI_Type_contiguous`` — ``count`` consecutive copies of ``old``."""
    _check_old(old, "Contiguous")
    count = _check_count(count, "count", "Contiguous")
    starts = np.arange(count, dtype=np.int64) * old.extent_elems
    disp = np.add.outer(starts, old.disp).ravel()
    return DatatypeImpl(old.base, disp, extent_elems=count * old.extent_elems,
                        name=f"contiguous({count},{old.name})")


def vector(count: int, blocklength: int, stride: int,
           old: DatatypeImpl) -> DatatypeImpl:
    """``MPI_Type_vector`` — ``count`` blocks of ``blocklength`` old types,
    block starts ``stride`` old-extents apart.  Negative strides are legal.
    """
    _check_old(old, "Vector")
    count = _check_count(count, "count", "Vector")
    blocklength = _check_count(blocklength, "blocklength", "Vector")
    ext = old.extent_elems
    return _blocked(old, count, [blocklength] * count,
                    [i * int(stride) * ext for i in range(count)],
                    stride_extent=count and _vector_extent(
                        count, blocklength, int(stride), ext),
                    name=f"vector({count},{blocklength},{stride},{old.name})")


def _vector_extent(count: int, blocklength: int, stride: int,
                   ext: int) -> int:
    """Extent of a vector type per MPI: ub - lb over all copies."""
    if count == 0 or blocklength == 0:
        return 0
    block_span = blocklength * ext
    starts = [i * stride * ext for i in range(count)]
    lb = min(starts)
    ub = max(s + block_span for s in starts)
    return ub - lb


def hvector(count: int, blocklength: int, stride_bytes: int,
            old: DatatypeImpl) -> DatatypeImpl:
    """``MPI_Type_hvector`` — like :func:`vector` with a byte stride."""
    _check_old(old, "Hvector")
    count = _check_count(count, "count", "Hvector")
    blocklength = _check_count(blocklength, "blocklength", "Hvector")
    stride = check_byte_displacement(stride_bytes, old.base, "Hvector")
    ext = old.extent_elems
    if count and blocklength:
        block_span = blocklength * ext
        starts = [i * stride for i in range(count)]
        extent = max(s + block_span for s in starts) - min(starts)
    else:
        extent = 0
    return _blocked(old, count, [blocklength] * count,
                    [i * stride for i in range(count)],
                    stride_extent=extent,
                    name=f"hvector({count},{blocklength},{stride_bytes}B,"
                         f"{old.name})")


def indexed(blocklengths, displacements, old: DatatypeImpl) -> DatatypeImpl:
    """``MPI_Type_indexed`` — displacements in old-type extents."""
    _check_old(old, "Indexed")
    blocklengths = [int(b) for b in blocklengths]
    displacements = [int(d) * old.extent_elems for d in displacements]
    return _indexed_common(old, blocklengths, displacements, "Indexed")


def hindexed(blocklengths, byte_displacements,
             old: DatatypeImpl) -> DatatypeImpl:
    """``MPI_Type_hindexed`` — displacements in bytes."""
    _check_old(old, "Hindexed")
    blocklengths = [int(b) for b in blocklengths]
    displacements = [check_byte_displacement(d, old.base, "Hindexed")
                     for d in byte_displacements]
    return _indexed_common(old, blocklengths, displacements, "Hindexed")


def _indexed_common(old, blocklengths, displacements, context):
    if len(blocklengths) != len(displacements):
        raise MPIException(
            ERR_ARG, f"{context}: blocklengths ({len(blocklengths)}) and "
                     f"displacements ({len(displacements)}) differ in length")
    for b in blocklengths:
        if b < 0:
            raise MPIException(ERR_COUNT,
                               f"{context}: negative blocklength {b}")
    return _blocked(old, len(blocklengths), blocklengths, displacements,
                    stride_extent=None,
                    name=f"{context.lower()}({len(blocklengths)} blocks,"
                         f"{old.name})")


def struct(blocklengths, byte_displacements, types) -> DatatypeImpl:
    """``MPI_Type_struct`` with the mpiJava same-base-type restriction.

    Every entry of ``types`` must have the same primitive base, which must
    agree with the element type of the buffer array the committed type is
    eventually used with (checked at communication time).
    """
    types = list(types)
    if not types:
        raise MPIException(ERR_ARG, "Struct: empty type list")
    if not (len(blocklengths) == len(byte_displacements) == len(types)):
        raise MPIException(ERR_ARG, "Struct: argument lists differ in length")
    for t in types:
        _check_old(t, "Struct")
    base = check_same_base(types, "Struct")
    pieces = []
    for blen, dbytes, t in zip(blocklengths, byte_displacements, types):
        blen = int(blen)
        if blen < 0:
            raise MPIException(ERR_COUNT, f"Struct: negative blocklength "
                                          f"{blen}")
        start = check_byte_displacement(dbytes, base, "Struct")
        for i in range(blen):
            pieces.append(start + i * t.extent_elems + t.disp)
    disp = (np.concatenate(pieces) if pieces
            else np.empty(0, dtype=np.int64))
    if disp.size:
        # MPI extent: ub - lb where lb = min displacement, ub = max + 1.
        extent = int(disp.max()) + 1 - int(disp.min())
    else:
        extent = 0
    return DatatypeImpl(base, disp, extent_elems=extent,
                        name=f"struct({len(types)} members,{base.name})")


def _blocked(old, count, blocklengths, start_elems, stride_extent, name):
    """Common expansion: blocks of old types at given element starts."""
    pieces = []
    for blen, start in zip(blocklengths, start_elems):
        if blen == 0:
            continue
        block_starts = start + np.arange(blen, dtype=np.int64) \
            * old.extent_elems
        pieces.append(np.add.outer(block_starts, old.disp).ravel())
    disp = (np.concatenate(pieces) if pieces
            else np.empty(0, dtype=np.int64))
    if stride_extent is not None:
        extent = stride_extent
    elif disp.size:
        extent = int(disp.max()) + 1 - int(disp.min())
    else:
        extent = 0
    return DatatypeImpl(old.base, disp, extent_elems=extent, name=name)
