"""Layout IR: the canonical run-length form of a datatype's selection.

A committed datatype's displacement map compiles into a small list of
*dense runs* — ``(element start, element length)`` pairs in serialization
order — plus the outer ``extent`` stride that repeats the pattern per
instance.  Every datapath consumer operates on runs instead of flat
element indices:

* :func:`~repro.datatypes.packing.gather_elements` /
  ``scatter_elements`` move one 2-D strided block per run (``nruns``
  NumPy copies for *any* count) instead of fabricating a
  ``count x size`` index array and fancy-indexing through it;
* :func:`~repro.runtime.buffers.extract_send_payload` hands wire
  transports a multi-view iovec (one byte view per run) so noncontiguous
  sends ship with a single vectored ``sendmsg`` — no gather copy at all;
* posted receives expose per-run writable views, so eager direct landing
  and rendezvous streaming ``recv_into`` the user buffer's runs directly
  (zero pack/unpack staging);
* pipelined collectives land dense segments with :meth:`LayoutIR.
  scatter_range`, walking only the runs a segment overlaps.

The IR is built once (``DatatypeImpl.commit`` — or lazily on first use)
and cached on the type; ``free()`` invalidates it.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np
from numpy.lib.stride_tricks import as_strided

__all__ = ["LayoutIR", "WIRE_IOV_CAP", "WIRE_MIN_AVG_RUN_BYTES"]

#: cached (offset, nelems) -> byte-span tables per layout; fixed-size
#: messaging patterns (pingpongs, halo exchanges, persistent requests)
#: reuse one shape every message
_SPAN_CACHE_MAX = 8

#: hard cap on iovec entries per wire message (Linux IOV_MAX is 1024;
#: one slot is reserved for the frame header)
WIRE_IOV_CAP = 1023

#: below this *average* run size the per-view Python overhead beats the
#: staging copy it would avoid — such layouts take the dense gather path
WIRE_MIN_AVG_RUN_BYTES = 512


class LayoutIR:
    """Run-length layout of one datatype instance, extent-repeatable.

    ``run_starts[k]`` is the element offset (relative to the instance
    origin, may be negative for negative-stride types) of run ``k``;
    ``run_lens[k]`` its length in elements; ``run_dense[k]`` its start
    position in the dense (serialized) element stream.  Instance ``i``
    of a ``count``-instance window shifts every run by
    ``i * extent_elems``.
    """

    __slots__ = ("itemsize", "extent_elems", "size_elems", "nruns",
                 "run_starts", "run_lens", "run_dense", "span_lo",
                 "span_hi", "contiguous", "monotonic", "uniform",
                 "run_stride", "use_runs", "_span_cache")

    def __init__(self, disp, extent_elems: int, itemsize: int):
        disp = np.ascontiguousarray(disp, dtype=np.int64)
        n = int(disp.shape[0])
        self.itemsize = int(itemsize)
        self.extent_elems = int(extent_elems)
        self.size_elems = n
        if n == 0:
            self.run_starts = np.empty(0, dtype=np.int64)
            self.run_lens = np.empty(0, dtype=np.int64)
            self.run_dense = np.empty(0, dtype=np.int64)
            self.nruns = 0
            self.span_lo = self.span_hi = 0
            self.contiguous = False
            self.monotonic = True
        else:
            d = np.diff(disp)
            starts_idx = np.concatenate(
                ([0], np.flatnonzero(d != 1) + 1)).astype(np.int64)
            ends_idx = np.concatenate((starts_idx[1:], [n]))
            self.run_starts = disp[starts_idx]
            self.run_lens = ends_idx - starts_idx
            self.run_dense = starts_idx
            self.nruns = int(starts_idx.shape[0])
            self.span_lo = int(disp.min())
            self.span_hi = int(disp.max()) + 1
            self.contiguous = bool(self.nruns == 1
                                   and self.run_starts[0] == 0
                                   and self.extent_elems == n)
            self.monotonic = bool(n == 1 or np.all(d > 0))
        # uniform = equal-length runs at a constant inner stride (every
        # Vector/Hvector, and any regular Indexed): the whole selection
        # is then ONE strided block — count instances move with a single
        # 3-D strided copy regardless of nruns
        if self.nruns >= 2:
            sdiff = np.diff(self.run_starts)
            self.uniform = bool(
                np.all(self.run_lens == self.run_lens[0])
                and np.all(sdiff == sdiff[0]))
            self.run_stride = int(sdiff[0]) if self.uniform else 0
        else:
            self.uniform = self.nruns == 1
            self.run_stride = 0
        # Copy-strategy choice.  A uniform layout is one strided copy —
        # always beats the index fabric.  An irregular layout pays one
        # NumPy call (~us) per run, so with many irregular runs the
        # single fancy-indexed gather wins.  Negative extents (only
        # constructible by hand) stay on the index path: the
        # strided-view bounds reasoning below assumes extent >= 0.
        self.use_runs = bool(
            n > 0 and self.extent_elems >= 0
            and (self.uniform or self.nruns <= 32))
        self._span_cache: OrderedDict[tuple[int, int], tuple] = \
            OrderedDict()

    # -- safety predicates --------------------------------------------------
    def scatter_safe(self, count: int) -> bool:
        """May runs be *written* with strided block copies?

        Requires disjoint destinations: serialization order must be
        memory order within an instance (monotonic displacements) and
        consecutive instances must not interleave (extent covers the
        span).  Overlapping layouts fall back to fancy indexing, whose
        last-write-wins order the run walk could not reproduce with
        vectorized per-run copies.
        """
        if not self.monotonic:
            return False
        return count <= 1 or self.extent_elems >= self.span_hi - self.span_lo

    def wire_friendly(self, nelems: int) -> bool:
        """Is a ``nelems``-element message worth shipping as an iovec?"""
        if self.size_elems == 0 or nelems <= 0:
            return False
        if self.contiguous:
            return True
        instances = -(-nelems // self.size_elems)
        entries = instances * self.nruns
        return (entries <= WIRE_IOV_CAP
                and nelems * self.itemsize
                >= entries * WIRE_MIN_AVG_RUN_BYTES)

    # -- block gather / scatter (whole instances) ---------------------------
    def _window(self, buf: np.ndarray, offset: int, count: int):
        """Strided view of the whole ``(count, nruns, runlen)`` selection.

        Only for uniform layouts: instance stride = extent, run stride =
        the constant inner stride.  The caller has validated the window,
        so the view is in bounds.
        """
        est = buf.strides[0]
        return as_strided(
            buf[int(offset + self.run_starts[0]):],
            shape=(count, self.nruns, int(self.run_lens[0])),
            strides=(self.extent_elems * est, self.run_stride * est, est))

    def gather(self, buf: np.ndarray, offset: int,
               count: int) -> np.ndarray:
        """Dense copy of ``count`` instances via strided block copies.

        Uniform layouts move in ONE 3-D strided copy; irregular layouts
        pay one 2-D copy per run (source rows = the run's position in
        each instance).  Either way there is no index fabric.  The
        caller has validated the window, so every strided view below is
        in bounds.
        """
        out = np.empty(count * self.size_elems, dtype=buf.dtype)
        if count == 0 or self.size_elems == 0:
            return out
        if self.uniform:
            out.reshape(count, self.nruns,
                        int(self.run_lens[0]))[:] = \
                self._window(buf, offset, count)
            return out
        dense = out.reshape(count, self.size_elems)
        est = buf.strides[0]
        row = self.extent_elems * est
        for s, ln, dn in zip(self.run_starts, self.run_lens,
                             self.run_dense):
            src = as_strided(buf[int(offset + s):], shape=(count, int(ln)),
                             strides=(row, est))
            dense[:, int(dn):int(dn + ln)] = src
        return out

    def scatter(self, buf: np.ndarray, offset: int, count: int,
                data: np.ndarray) -> None:
        """Inverse of :meth:`gather`; caller checked :meth:`scatter_safe`."""
        if count == 0 or self.size_elems == 0:
            return
        if self.uniform:
            self._window(buf, offset, count)[:] = \
                data[:count * self.size_elems].reshape(
                    count, self.nruns, int(self.run_lens[0]))
            return
        dense = data[:count * self.size_elems].reshape(count,
                                                       self.size_elems)
        est = buf.strides[0]
        row = self.extent_elems * est
        for s, ln, dn in zip(self.run_starts, self.run_lens,
                             self.run_dense):
            dst = as_strided(buf[int(offset + s):], shape=(count, int(ln)),
                             strides=(row, est))
            dst[:, :] = dense[:, int(dn):int(dn + ln)]

    # -- dense-range walking (segments, partial messages, iovecs) ----------
    def element_pieces(self, offset: int, elem_lo: int,
                       elem_hi: int) -> list[tuple[int, int]]:
        """``(buffer element start, length)`` pieces, serialization order.

        Covers dense element positions ``[elem_lo, elem_hi)`` of a
        window of instances starting at buffer element ``offset`` —
        the run-walk behind segment landing, partial-message landing
        and iovec construction.
        """
        pieces: list[tuple[int, int]] = []
        size = self.size_elems
        if size == 0:
            return pieces
        rd, rl, rs = self.run_dense, self.run_lens, self.run_starts
        ext = self.extent_elems
        e = elem_lo
        while e < elem_hi:
            inst, de = divmod(e, size)
            k = int(np.searchsorted(rd, de, side="right")) - 1
            intra = de - int(rd[k])
            take = min(int(rl[k]) - intra, elem_hi - e)
            pieces.append((offset + inst * ext + int(rs[k]) + intra, take))
            e += take
        return pieces

    def scatter_range(self, buf, offset: int, data,
                      elem_lo: int) -> None:
        """Land dense elements ``elem_lo..`` into the selected positions.

        Sequential per-piece slice copies in serialization order, so
        overlapping layouts keep fancy indexing's last-write-wins
        outcome.  Used by pipelined collective segments and partial
        trailing instances, where the 2-D block form does not apply.
        """
        n = len(data)
        nbuf = len(buf)
        pos = 0
        for start, take in self.element_pieces(offset, elem_lo,
                                               elem_lo + n):
            if start < 0 or start + take > nbuf:
                # same failure mode as the legacy fancy-indexed landing:
                # slice assignment would silently clamp, which must not
                # mask an out-of-window message
                raise IndexError(
                    f"run [{start},{start + take}) outside buffer of "
                    f"length {nbuf}")
            buf[start:start + take] = data[pos:pos + take]
            pos += take

    def byte_spans(self, offset: int,
                   nelems: int) -> tuple[list, list, int, int]:
        """``(starts, ends, lo, hi)`` byte-span tables, in serialization
        order, covering ``nelems`` dense elements at element ``offset``.

        Adjacent-in-memory pieces are merged (a contiguous tail after a
        strided head becomes one span); ``lo``/``hi`` bound the touched
        byte range for the caller's window check.  Cached per
        ``(offset, nelems)`` with LRU eviction: fixed-shape messaging
        patterns pay the vectorized construction once.
        """
        key = (offset, nelems)
        hit = self._span_cache.get(key)
        if hit is not None:
            try:
                self._span_cache.move_to_end(key)
            except KeyError:   # concurrently evicted by another rank
                pass
            return hit
        size = self.size_elems
        full, part = divmod(nelems, size)
        grids = []
        if full:
            if full == 1:
                grids.append((offset + self.run_starts, self.run_lens))
            else:
                inst = np.arange(full, dtype=np.int64) * self.extent_elems
                starts = (offset + np.add.outer(
                    inst, self.run_starts)).ravel()
                lens = np.broadcast_to(
                    self.run_lens, (full, self.nruns)).ravel()
                grids.append((starts, lens))
        if part:
            # partial trailing instance: the run prefix covering its
            # first ``part`` dense elements
            k = int(np.searchsorted(self.run_dense, part - 1,
                                    side="right")) - 1
            base = offset + full * self.extent_elems
            pstarts = base + self.run_starts[:k + 1]
            plens = self.run_lens[:k + 1].copy()
            plens[k] = part - int(self.run_dense[k])
            grids.append((pstarts, plens))
        if len(grids) == 1:
            starts, lens = grids[0]
        else:
            starts = np.concatenate([g[0] for g in grids])
            lens = np.concatenate([g[1] for g in grids])
        isz = self.itemsize
        a = starts * isz
        b = a + lens * isz
        if len(a) > 1:
            # merge pieces that are adjacent in memory (and in order)
            new_span = np.empty(len(a), dtype=bool)
            new_span[0] = True
            np.not_equal(a[1:], b[:-1], out=new_span[1:])
            if not new_span.all():
                last = np.flatnonzero(
                    np.concatenate((new_span[1:], [True])))
                a, b = a[new_span], b[last]
        entry = (a.tolist(), b.tolist(), int(a.min()), int(b.max()))
        while len(self._span_cache) >= _SPAN_CACHE_MAX:
            try:
                self._span_cache.popitem(last=False)
            except KeyError:   # another rank emptied it concurrently
                break
        self._span_cache[key] = entry
        return entry

    def byte_views(self, buf: np.ndarray, offset: int,
                   nelems: int) -> list[memoryview] | None:
        """Byte views of the selected runs, serialization order.

        The iovec of a zero-copy wire message: a vectored send ships
        them as-is, a direct-landing receive streams into them.  Built
        from the cached :meth:`byte_spans` tables — on the steady state
        of a fixed-shape exchange this is just one ``memoryview`` slice
        per span.  Returns None when any span falls outside ``buf`` —
        callers then take the staged path, which reports the proper MPI
        error.
        """
        if self.size_elems == 0 or nelems <= 0:
            return []
        starts, ends, lo, hi = self.byte_spans(offset, nelems)
        if lo < 0 or hi > buf.nbytes:
            return None
        mv = memoryview(buf).cast("B")
        return [mv[x:y] for x, y in zip(starts, ends)]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"LayoutIR(runs={self.nruns}, size={self.size_elems}, "
                f"extent={self.extent_elems}, "
                f"{'contiguous' if self.contiguous else 'strided'})")
