"""Datatype machinery: primitive types, derived-type constructors, packing.

Mirrors the paper's §2 / §2.2 model: message buffers are one-dimensional
arrays of a single primitive type plus an explicit ``offset``; derived
datatypes describe contiguous, strided or indirectly indexed element
selections *within* such an array; ``Struct`` is restricted to a single base
type (the paper's documented limitation); and ``MPI.OBJECT`` implements the
paper's proposed serialization extension.
"""

from repro.datatypes.base import DatatypeImpl, PrimitiveInfo
from repro.datatypes.layout import LayoutIR
from repro.datatypes import primitives
from repro.datatypes.primitives import (
    BYTE, CHAR, SHORT, BOOLEAN, INT, LONG, FLOAT, DOUBLE, PACKED, OBJECT,
    SHORT2, INT2, LONG2, FLOAT2, DOUBLE2, BASIC_TYPES,
)
from repro.datatypes.derived import (
    contiguous, vector, hvector, indexed, hindexed, struct,
)
from repro.datatypes.packing import (
    gather_elements, scatter_elements, pack, unpack, pack_size,
)

__all__ = [
    "DatatypeImpl", "PrimitiveInfo", "LayoutIR", "primitives",
    "BYTE", "CHAR", "SHORT", "BOOLEAN", "INT", "LONG", "FLOAT", "DOUBLE",
    "PACKED", "OBJECT", "SHORT2", "INT2", "LONG2", "FLOAT2", "DOUBLE2",
    "BASIC_TYPES",
    "contiguous", "vector", "hvector", "indexed", "hindexed", "struct",
    "gather_elements", "scatter_elements", "pack", "unpack", "pack_size",
]
