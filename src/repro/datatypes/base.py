"""Datatype kernel.

A datatype in this reproduction is what the paper's Java binding makes it:
a *selection pattern over a one-dimensional array of one primitive type*.
Because Java (and our binding) forbids mixed-primitive buffers, a derived
type never needs a byte-level type map — it reduces to

* a primitive ``base`` (NumPy dtype + element size),
* ``disp`` — the element offsets (in base-element units) touched by one
  instance of the type, in serialization order, and
* ``extent_elems`` — the stride between consecutive instances when
  ``count > 1`` (MPI's *extent*, in elements).

This representation makes packing vectorizable: the flat element indices for
``count`` instances starting at ``offset`` are
``offset + i*extent + disp`` for ``i in range(count)`` — a single
``np.add.outer`` (see :mod:`repro.datatypes.packing`).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import MPIException, ERR_ARG, ERR_COUNT, ERR_TYPE
from repro.datatypes.layout import LayoutIR

#: Cache size for per-(count, offset) flattened index maps.  Eviction is
#: LRU: a working set of persistent requests cycling through more than
#: _INDEX_CACHE_MAX shapes drops only the coldest entry per miss instead
#: of dumping every cached index map at once.
_INDEX_CACHE_MAX = 32


@dataclass(frozen=True)
class PrimitiveInfo:
    """Descriptor of a primitive base type.

    ``is_object`` marks the ``MPI.OBJECT`` extension type whose buffers hold
    arbitrary serializable Python objects rather than numeric elements.
    """

    name: str
    np_dtype: object          # numpy dtype (None for OBJECT)
    itemsize: int             # bytes per element (0 for OBJECT)
    is_object: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PrimitiveInfo({self.name})"


class DatatypeImpl:
    """Internal (runtime-side) datatype object.

    The public :class:`repro.mpijava.datatype.Datatype` wraps a handle that
    resolves to one of these.  Instances are immutable after ``commit``.
    """

    def __init__(self, base: PrimitiveInfo, disp, extent_elems: int,
                 name: str = "", committed: bool = False,
                 is_pair: bool = False):
        self.base = base
        self.disp = np.ascontiguousarray(disp, dtype=np.int64)
        if self.disp.ndim != 1:
            raise MPIException(ERR_TYPE, "displacement map must be 1-D")
        self.extent_elems = int(extent_elems)
        self.name = name or "user"
        self.committed = bool(committed)
        self.freed = False
        #: pair types (INT2 &c.) are the only legal operands of MINLOC/MAXLOC
        self.is_pair = bool(is_pair)
        self._index_cache: OrderedDict[tuple[int, int], np.ndarray] = \
            OrderedDict()
        self._contiguous: bool | None = None   # is_contiguous_layout cache
        self._layout: LayoutIR | None = None   # run-length layout IR cache

    # -- inquiry (MPI_Type_size / extent / lb / ub) --------------------------
    @property
    def size_elems(self) -> int:
        """Number of base elements transferred per instance."""
        return int(self.disp.shape[0])

    def size_bytes(self) -> int:
        """``MPI_Type_size`` — bytes of actual data per instance."""
        return self.size_elems * self.base.itemsize

    def lb_elems(self) -> int:
        """Lower bound, in elements (``MPI_Type_lb`` / element units)."""
        # the layout IR caches min/max displacement; recomputing them
        # with a reduction over ``disp`` sat on every window validation
        return self.layout().span_lo if self.size_elems else 0

    def ub_elems(self) -> int:
        """Upper bound, in elements (``MPI_Type_ub`` / element units)."""
        return self.layout().span_hi if self.size_elems else 0

    def lb_bytes(self) -> int:
        return self.lb_elems() * self.base.itemsize

    def ub_bytes(self) -> int:
        return self.ub_elems() * self.base.itemsize

    def extent_bytes(self) -> int:
        """``MPI_Type_extent`` in bytes."""
        return self.extent_elems * self.base.itemsize

    @property
    def is_primitive(self) -> bool:
        return (self.size_elems == 1 and self.extent_elems == 1
                and (self.size_elems == 0 or int(self.disp[0]) == 0))

    def is_contiguous_layout(self) -> bool:
        """True when ``count`` instances cover a dense index range.

        Cached: the displacement map is immutable after construction, and
        this sits on the per-message send/receive fast path.
        """
        if self._contiguous is None:
            self._contiguous = self.layout().contiguous
        return self._contiguous

    def layout(self) -> LayoutIR:
        """The run-length layout IR (built once, cached; see
        :class:`~repro.datatypes.layout.LayoutIR`)."""
        lay = self._layout
        if lay is None:
            self._check_alive()   # a freed type must not rebuild its IR
            lay = self._layout = LayoutIR(self.disp, self.extent_elems,
                                          self.base.itemsize)
        return lay

    # -- lifecycle -----------------------------------------------------------
    def commit(self) -> None:
        """``MPI_Type_commit`` — mark usable for communication.

        Compiles the layout IR here, once: commit is MPI's declared
        "optimize this type now" point, and every datapath consumer
        (packing, iovec construction, direct landing, segment math)
        reads the cached IR from then on.
        """
        self._check_alive()
        self.committed = True
        if not self.base.is_object:
            self.layout()

    def free(self) -> None:
        """``MPI_Type_free`` — release; further use is erroneous.

        Drops the cached index maps *and* the layout IR: a freed type's
        compiled artifacts must not keep the (potentially large) arrays
        alive, and any stale handle reuse fails loudly instead of
        reading a cache.
        """
        self._check_alive()
        self.freed = True
        self._index_cache.clear()
        self._layout = None
        self._contiguous = None

    def _check_alive(self) -> None:
        if self.freed:
            raise MPIException(ERR_TYPE, f"datatype {self.name} was freed")

    # -- index-map machinery ---------------------------------------------------
    def flat_indices(self, count: int, offset: int = 0) -> np.ndarray:
        """Flat element indices selected by ``count`` instances at ``offset``.

        The result is cached for repeated (count, offset) pairs — persistent
        requests and fixed-size loops hit the cache every iteration.
        """
        self._check_alive()
        if count < 0:
            raise MPIException(ERR_COUNT, f"negative count {count}")
        key = (int(count), int(offset))
        hit = self._index_cache.get(key)
        if hit is not None:
            try:
                self._index_cache.move_to_end(key)
            except KeyError:   # concurrently evicted by another rank
                pass
            return hit
        starts = offset + np.arange(count, dtype=np.int64) * self.extent_elems
        idx = np.add.outer(starts, self.disp).ravel()
        while len(self._index_cache) >= _INDEX_CACHE_MAX:
            try:
                self._index_cache.popitem(last=False)  # evict LRU only
            except KeyError:   # another rank emptied it concurrently
                break
        self._index_cache[key] = idx
        return idx

    def span_elems(self, count: int) -> int:
        """Highest element index touched + 1, for ``count`` instances at 0."""
        if count == 0 or self.size_elems == 0:
            return 0
        return (count - 1) * self.extent_elems + self.ub_elems()

    def min_elem(self, count: int) -> int:
        """Lowest element index touched for ``count`` instances at offset 0."""
        if count == 0 or self.size_elems == 0:
            return 0
        lb = self.lb_elems()
        last = (count - 1) * self.extent_elems + lb
        return min(lb, last)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"DatatypeImpl({self.name}, base={self.base.name}, "
                f"size={self.size_elems}, extent={self.extent_elems})")


def check_same_base(types, context: str) -> PrimitiveInfo:
    """Enforce the paper's §2.2 restriction: one base type per buffer.

    ``Datatype.Struct`` (and any composition) must combine types sharing a
    single primitive base, which must agree with the buffer's element type.
    """
    bases = {t.base.name for t in types}
    if len(bases) != 1:
        raise MPIException(
            ERR_TYPE,
            f"{context}: mpiJava restricts combined types to one base type "
            f"(got {sorted(bases)}); see paper section 2.2")
    return types[0].base


def check_byte_displacement(nbytes: int, base: PrimitiveInfo,
                            context: str) -> int:
    """Convert a byte displacement to elements, validating alignment.

    The pointer-free buffer model means byte displacements (``Hvector``,
    ``Hindexed``, ``Struct``) must land on element boundaries of the base
    type.
    """
    if base.itemsize == 0:
        raise MPIException(ERR_TYPE, f"{context}: byte displacements are "
                                     f"meaningless for MPI.OBJECT")
    q, r = divmod(int(nbytes), base.itemsize)
    if r != 0:
        raise MPIException(
            ERR_ARG,
            f"{context}: byte displacement {nbytes} is not a multiple of "
            f"the {base.name} element size {base.itemsize}")
    return q
