"""Element gather/scatter and ``MPI_Pack``/``MPI_Unpack``.

The hot paths operate on the datatype's layout IR (see
:mod:`repro.datatypes.layout`): a derived type's selection compiles to a
handful of dense runs, and gathering/scattering a strided section is one
2-D block copy *per run* — no ``count x size`` index fabric on the hot
path.  Layouts the IR cannot serve (many tiny runs, overlapping or
non-monotonic selections, hand-built negative extents) fall back to the
legacy cached-flat-index fancy-indexing path, which remains the
semantic reference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MPIException, ERR_ARG, ERR_BUFFER, ERR_TRUNCATE
from repro.datatypes.base import DatatypeImpl
from repro.datatypes.object_serial import serialize_objects, \
    deserialize_objects
from repro.obs.metrics import CounterGroup

__all__ = ["gather_elements", "scatter_elements",
           "pack", "unpack", "pack_size", "DATAPATH"]

#: layout-IR datapath accounting: which path moved each message's
#: elements — contiguous slice, IR run walk, or the cached-index
#: fallback — plus the wire-side view decisions counted from
#: :mod:`repro.runtime.buffers` (zero-copy borrow / iovec vs gather copy
#: on send, direct landing granted vs refused on receive)
DATAPATH = CounterGroup("datapath", (
    "gather_contig", "gather_runs", "gather_index",
    "scatter_contig", "scatter_runs", "scatter_index",
    "send_view", "send_iovec", "send_gather",
    "recv_direct", "recv_refused",
))


def _validate_window(buf, offset: int, datatype: DatatypeImpl,
                     count: int) -> None:
    """Check that ``count`` instances at ``offset`` fit inside ``buf``."""
    lo = offset + datatype.min_elem(count)
    hi = offset + datatype.span_elems(count)
    if lo < 0 or hi > len(buf):
        raise MPIException(
            ERR_BUFFER,
            f"datatype {datatype.name} x{count} at offset {offset} spans "
            f"elements [{lo},{hi}) of a buffer of length {len(buf)}")


def gather_elements(buf, offset: int, count: int,
                    datatype: DatatypeImpl) -> np.ndarray:
    """Copy the selected elements out of ``buf`` into a dense 1-D array.

    For contiguous layouts this is a plain slice copy (the fast path the
    ``-C`` benchmark columns ride on); otherwise a fancy-indexed gather.
    """
    datatype._check_alive()
    _validate_window(buf, offset, datatype, count)
    lay = datatype.layout()
    if lay.contiguous:
        # always a real copy: eager sends park the payload in the
        # receiver's unexpected queue, and MPI lets the sender reuse the
        # buffer the moment the send returns
        DATAPATH.add("gather_contig")
        n = count * datatype.size_elems
        return buf[offset:offset + n].copy()
    if lay.use_runs:
        DATAPATH.add("gather_runs")
        return lay.gather(buf, offset, count)
    DATAPATH.add("gather_index")
    idx = datatype.flat_indices(count, offset)
    return buf[idx]


def scatter_elements(buf, offset: int, count: int, datatype: DatatypeImpl,
                     data: np.ndarray) -> None:
    """Scatter a dense 1-D array into the selected elements of ``buf``."""
    datatype._check_alive()
    _validate_window(buf, offset, datatype, count)
    need = count * datatype.size_elems
    if len(data) < need:
        raise MPIException(ERR_TRUNCATE,
                           f"have {len(data)} elements, need {need}")
    lay = datatype.layout()
    if lay.contiguous:
        DATAPATH.add("scatter_contig")
        buf[offset:offset + need] = data[:need]
        return
    if lay.use_runs and lay.scatter_safe(count):
        DATAPATH.add("scatter_runs")
        lay.scatter(buf, offset, count, data)
        return
    DATAPATH.add("scatter_index")
    idx = datatype.flat_indices(count, offset)
    buf[idx] = data[:need]


# --- MPI_Pack / MPI_Unpack ---------------------------------------------------

def pack_size(incount: int, datatype: DatatypeImpl) -> int:
    """Upper bound on packed bytes (``MPI_Pack_size``)."""
    datatype._check_alive()
    if datatype.base.is_object:
        raise MPIException(ERR_ARG, "Pack_size of MPI.OBJECT is not defined "
                                    "before serialization")
    return incount * datatype.size_bytes()


def pack(inbuf, offset: int, incount: int, datatype: DatatypeImpl,
         outbuf: np.ndarray, position: int) -> int:
    """``MPI_Pack`` — append selected elements to ``outbuf`` at ``position``.

    ``outbuf`` must be a byte buffer (``MPI.PACKED``-compatible, uint8).
    Returns the new position.
    """
    if datatype.base.is_object:
        blob = serialize_objects(list(inbuf[offset:offset + incount]))
        data = np.frombuffer(blob, dtype=np.uint8)
        header = np.frombuffer(
            np.int64(len(data)).tobytes(), dtype=np.uint8)
        data = np.concatenate([header, data])
    else:
        elems = gather_elements(inbuf, offset, incount, datatype)
        data = np.frombuffer(elems.tobytes(), dtype=np.uint8)
    end = position + len(data)
    if end > len(outbuf):
        raise MPIException(ERR_TRUNCATE,
                           f"pack overflows outbuf: need {end} bytes, "
                           f"have {len(outbuf)}")
    outbuf[position:end] = data
    return end


def unpack(inbuf: np.ndarray, position: int, outbuf, offset: int,
           outcount: int, datatype: DatatypeImpl) -> int:
    """``MPI_Unpack`` — extract elements from a packed byte buffer.

    Returns the new position.
    """
    if datatype.base.is_object:
        hdr_end = position + 8
        nbytes = int(np.frombuffer(
            inbuf[position:hdr_end].tobytes(), dtype=np.int64)[0])
        end = hdr_end + nbytes
        objs = deserialize_objects(inbuf[hdr_end:end].tobytes())
        if len(objs) < outcount:
            raise MPIException(ERR_TRUNCATE,
                               f"unpacked {len(objs)} objects, "
                               f"need {outcount}")
        for i in range(outcount):
            outbuf[offset + i] = objs[i]
        return end
    nbytes = outcount * datatype.size_bytes()
    end = position + nbytes
    if end > len(inbuf):
        raise MPIException(ERR_TRUNCATE,
                           f"unpack underflow: need {nbytes} bytes at "
                           f"{position}, have {len(inbuf)}")
    elems = np.frombuffer(inbuf[position:end].tobytes(),
                          dtype=datatype.base.np_dtype)
    scatter_elements(outbuf, offset, outcount, datatype, elems)
    return end
